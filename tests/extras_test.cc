// Tests for the extension features layered on the core reproduction:
// Adam, cosine LR, label smoothing, gradient clipping, model summaries,
// per-class reports, N-stream fusion, view normalization and the
// validated training loop.

#include <cmath>

#include "gtest/gtest.h"

#include "base/rng.h"
#include "data/transforms.h"
#include "models/model_zoo.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/tensor_ops.h"
#include "train/evaluator.h"
#include "train/experiment.h"
#include "train/summary.h"
#include "train/trainer.h"

namespace dhgcn {
namespace {

// --- AdamOptimizer -----------------------------------------------------------

TEST(AdamTest, ConvergesOnQuadratic) {
  Tensor w = Tensor::FromList({5.0f, -3.0f});
  Tensor g({2});
  Tensor target = Tensor::FromList({1.0f, 2.0f});
  AdamOptimizer::Options options;
  options.lr = 0.1f;
  AdamOptimizer adam({{"w", &w, &g}}, options);
  for (int step = 0; step < 300; ++step) {
    for (int64_t i = 0; i < 2; ++i) g.flat(i) = w.flat(i) - target.flat(i);
    adam.Step();
  }
  EXPECT_NEAR(w.flat(0), 1.0f, 1e-2f);
  EXPECT_NEAR(w.flat(1), 2.0f, 1e-2f);
  EXPECT_EQ(adam.step_count(), 300);
}

TEST(AdamTest, FirstStepIsLrSized) {
  // With bias correction, the first Adam step magnitude is ~lr
  // regardless of the gradient scale.
  for (float scale : {0.01f, 1.0f, 100.0f}) {
    Tensor w = Tensor::FromList({0.0f});
    Tensor g = Tensor::FromList({scale});
    AdamOptimizer::Options options;
    options.lr = 0.5f;
    AdamOptimizer adam({{"w", &w, &g}}, options);
    adam.Step();
    EXPECT_NEAR(std::fabs(w.flat(0)), 0.5f, 0.05f) << "scale " << scale;
  }
}

TEST(AdamTest, ZeroGradClears) {
  Tensor w({2});
  Tensor g = Tensor::Ones({2});
  AdamOptimizer adam({{"w", &w, &g}}, {});
  adam.ZeroGrad();
  EXPECT_FLOAT_EQ(Norm2(g), 0.0f);
}

// --- CosineLrSchedule ----------------------------------------------------------

TEST(CosineScheduleTest, EndpointsAndMonotonicity) {
  CosineLrSchedule schedule(0.1f, 10, 0.001f);
  EXPECT_FLOAT_EQ(schedule.LrForEpoch(0), 0.1f);
  EXPECT_NEAR(schedule.LrForEpoch(10), 0.001f, 1e-6f);
  EXPECT_NEAR(schedule.LrForEpoch(100), 0.001f, 1e-6f);
  for (int64_t e = 1; e <= 10; ++e) {
    EXPECT_LE(schedule.LrForEpoch(e), schedule.LrForEpoch(e - 1) + 1e-7f);
  }
}

TEST(CosineScheduleTest, HalfwayIsMidpoint) {
  CosineLrSchedule schedule(0.2f, 10, 0.0f);
  EXPECT_NEAR(schedule.LrForEpoch(5), 0.1f, 1e-5f);
}

// --- Label smoothing -------------------------------------------------------------

TEST(LabelSmoothingTest, ZeroEpsilonMatchesPlainCrossEntropy) {
  Rng rng(20);
  Tensor logits = Tensor::RandomNormal({3, 5}, rng);
  SoftmaxCrossEntropy plain(0.0f);
  SoftmaxCrossEntropy smooth(0.0f);
  std::vector<int64_t> labels = {1, 0, 4};
  EXPECT_FLOAT_EQ(plain.Forward(logits, labels),
                  smooth.Forward(logits, labels));
}

TEST(LabelSmoothingTest, SmoothedLossIsHigherOnConfidentCorrect) {
  Tensor logits({1, 4});
  logits.at(0, 2) = 30.0f;
  SoftmaxCrossEntropy plain(0.0f);
  SoftmaxCrossEntropy smooth(0.2f);
  float plain_loss = plain.Forward(logits, {2});
  float smooth_loss = smooth.Forward(logits, {2});
  EXPECT_LT(plain_loss, 1e-4f);
  EXPECT_GT(smooth_loss, 1.0f);  // penalizes over-confidence
}

TEST(LabelSmoothingTest, GradientMatchesFiniteDifference) {
  Rng rng(21);
  Tensor logits = Tensor::RandomNormal({2, 4}, rng);
  std::vector<int64_t> labels = {3, 1};
  SoftmaxCrossEntropy loss(0.1f);
  loss.Forward(logits, labels);
  Tensor analytic = loss.Backward();
  const float eps = 1e-3f;
  for (int64_t idx = 0; idx < logits.numel(); ++idx) {
    float original = logits.flat(idx);
    logits.flat(idx) = original + eps;
    float up = loss.Forward(logits, labels);
    logits.flat(idx) = original - eps;
    float down = loss.Forward(logits, labels);
    logits.flat(idx) = original;
    EXPECT_NEAR(analytic.flat(idx), (up - down) / (2.0f * eps), 5e-3f);
  }
}

TEST(LabelSmoothingTest, GradientRowsStillSumToZero) {
  Rng rng(22);
  Tensor logits = Tensor::RandomNormal({3, 6}, rng);
  SoftmaxCrossEntropy loss(0.3f);
  loss.Forward(logits, {0, 2, 5});
  Tensor grad = loss.Backward();
  for (int64_t i = 0; i < 3; ++i) {
    double sum = 0.0;
    for (int64_t k = 0; k < 6; ++k) sum += grad.at(i, k);
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

// --- Summary / gradient utilities ---------------------------------------------------

TEST(SummaryTest, ListsAllParamsAndTotal) {
  Rng rng(23);
  Linear model(4, 3, rng);
  std::string summary = ParameterSummary(model);
  EXPECT_NE(summary.find("weight"), std::string::npos);
  EXPECT_NE(summary.find("bias"), std::string::npos);
  EXPECT_NE(summary.find("15"), std::string::npos);  // 12 + 3 total
  EXPECT_EQ(TotalParameters(model), 15);
}

TEST(GradientUtilsTest, NormsAndClipping) {
  Rng rng(24);
  Linear model(2, 2, rng);
  EXPECT_GT(ParameterNorm(model), 0.0f);
  EXPECT_FLOAT_EQ(GradientNorm(model), 0.0f);

  // Fill gradients with known values: norm = sqrt(6 * 4) = ~4.9.
  for (ParamRef& p : model.Params()) p.grad->Fill(2.0f);
  float norm = GradientNorm(model);
  EXPECT_NEAR(norm, std::sqrt(6.0f * 4.0f), 1e-4f);

  float pre_clip = ClipGradientNorm(model, 1.0f);
  EXPECT_NEAR(pre_clip, norm, 1e-4f);
  EXPECT_NEAR(GradientNorm(model), 1.0f, 1e-4f);

  // A second clip with a large bound is a no-op.
  ClipGradientNorm(model, 10.0f);
  EXPECT_NEAR(GradientNorm(model), 1.0f, 1e-4f);
}

// --- View normalization --------------------------------------------------------------

TEST(ViewNormalizeTest, RemovesCameraRotation) {
  // The same motion seen from two cameras must agree after
  // view-normalization (up to noise).
  SyntheticDataConfig config = NtuLikeConfig(2, 2, 8, 55);
  config.sensor_noise = 0.0f;
  SyntheticSkeletonGenerator generator(config);
  SkeletonSample cam0 = generator.GenerateSample(0, 0, 0, 0, 77);
  SkeletonSample cam2 = generator.GenerateSample(0, 0, 2, 0, 77);
  const SkeletonLayout& layout = generator.layout();
  EXPECT_FALSE(AllClose(cam0.data, cam2.data, 1e-2f, 1e-2f));
  Tensor norm0 = ViewNormalize(cam0.data, layout);
  Tensor norm2 = ViewNormalize(cam2.data, layout);
  // Small per-sample camera jitter (elevation/azimuth noise) remains, so
  // compare with a loose tolerance.
  EXPECT_LT(Norm2(Sub(norm0, norm2)), 0.15f * Norm2(norm0));
}

TEST(ViewNormalizeTest, PreservesPairwiseGeometry) {
  SyntheticDataConfig config = NtuLikeConfig(2, 2, 4, 56);
  SyntheticSkeletonGenerator generator(config);
  SkeletonSample sample = generator.GenerateSample(1, 0, 1, 0, 5);
  const SkeletonLayout& layout = generator.layout();
  Tensor normalized = ViewNormalize(sample.data, layout);
  for (int64_t t = 0; t < 4; ++t) {
    for (int64_t a = 0; a < 25; a += 5) {
      for (int64_t b = a + 1; b < 25; b += 7) {
        double before = 0.0, after = 0.0;
        for (int64_t c = 0; c < 3; ++c) {
          double d1 = sample.data.at(c, t, a) - sample.data.at(c, t, b);
          double d2 = normalized.at(c, t, a) - normalized.at(c, t, b);
          before += d1 * d1;
          after += d2 * d2;
        }
        EXPECT_NEAR(std::sqrt(after), std::sqrt(before), 1e-3);
      }
    }
  }
}

TEST(ViewNormalizeTest, DegenerateSkeletonUnchanged) {
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kNtu25);
  Tensor zeros({3, 2, 25});
  Tensor out = ViewNormalize(zeros, layout);
  EXPECT_TRUE(AllClose(out, zeros));
}

// --- Trainer extensions ------------------------------------------------------------

SkeletonDataset SmallDataset() {
  SyntheticDataConfig config = NtuLikeConfig(3, 8, 10, 60);
  return SkeletonDataset::Generate(config).MoveValue();
}

ModelZooOptions TinyZoo() {
  ModelZooOptions zoo;
  zoo.scale.channels = {6, 12};
  zoo.scale.strides = {1, 2};
  zoo.scale.dropout = 0.0f;
  return zoo;
}

TEST(TrainerExtensionsTest, AdamTrainerRuns) {
  SkeletonDataset dataset = SmallDataset();
  DatasetSplit split = dataset.RandomSplit(0.3f, 1);
  LayerPtr model =
      CreateModel(ModelKind::kStgcn, SkeletonLayoutType::kNtu25, 3,
                  TinyZoo());
  TrainOptions options;
  options.epochs = 3;
  options.initial_lr = 1e-3f;
  options.optimizer = OptimizerKind::kAdam;
  DataLoader loader(&dataset, split.train, 8, InputStream::kJoint, true,
                    Rng(2));
  Trainer trainer(model.get(), options);
  std::vector<EpochStats> history = trainer.Train(loader).ValueOrDie();
  EXPECT_EQ(history.size(), 3u);
  EXPECT_LT(history.back().mean_loss, history.front().mean_loss + 0.5);
}

TEST(TrainerExtensionsTest, GradClipAndSmoothingRun) {
  SkeletonDataset dataset = SmallDataset();
  DatasetSplit split = dataset.RandomSplit(0.3f, 1);
  LayerPtr model =
      CreateModel(ModelKind::kStgcn, SkeletonLayoutType::kNtu25, 3,
                  TinyZoo());
  TrainOptions options;
  options.epochs = 2;
  options.initial_lr = 0.05f;
  options.clip_grad_norm = 1.0f;
  options.label_smoothing = 0.1f;
  DataLoader loader(&dataset, split.train, 8, InputStream::kJoint, true,
                    Rng(3));
  Trainer trainer(model.get(), options);
  std::vector<EpochStats> history = trainer.Train(loader).ValueOrDie();
  EXPECT_EQ(history.size(), 2u);
  EXPECT_TRUE(std::isfinite(history.back().mean_loss));
}

TEST(TrainerExtensionsTest, ValidationTracksBestAndRestores) {
  SkeletonDataset dataset = SmallDataset();
  DatasetSplit split = dataset.RandomSplit(0.3f, 1);
  LayerPtr model =
      CreateModel(ModelKind::kStgcn, SkeletonLayoutType::kNtu25, 3,
                  TinyZoo());
  TrainOptions options;
  options.epochs = 5;
  options.initial_lr = 0.05f;
  DataLoader train_loader(&dataset, split.train, 8, InputStream::kJoint,
                          true, Rng(4));
  DataLoader val_loader(&dataset, split.test, 8, InputStream::kJoint,
                        false);
  Trainer trainer(model.get(), options);
  ValidatedTraining result =
      trainer.TrainWithValidation(train_loader, val_loader).ValueOrDie();
  EXPECT_GE(result.best_epoch, 0);
  EXPECT_LE(result.best_epoch, 4);
  EXPECT_GE(result.best_val_top1, 0.0);
  // The restored model must reproduce the recorded best metric.
  EvalMetrics check = Evaluate(*model, val_loader);
  EXPECT_NEAR(check.top1, result.best_val_top1, 1e-9);
}

TEST(TrainerExtensionsTest, EarlyStoppingStopsBeforeBudget) {
  SkeletonDataset dataset = SmallDataset();
  DatasetSplit split = dataset.RandomSplit(0.3f, 1);
  LayerPtr model =
      CreateModel(ModelKind::kStgcn, SkeletonLayoutType::kNtu25, 3,
                  TinyZoo());
  TrainOptions options;
  options.epochs = 50;
  options.initial_lr = 1e-6f;  // effectively frozen: no improvement
  DataLoader train_loader(&dataset, split.train, 8, InputStream::kJoint,
                          true, Rng(5));
  DataLoader val_loader(&dataset, split.test, 8, InputStream::kJoint,
                        false);
  Trainer trainer(model.get(), options);
  ValidatedTraining result =
      trainer.TrainWithValidation(train_loader, val_loader, /*patience=*/2)
          .ValueOrDie();
  EXPECT_TRUE(result.early_stopped);
  EXPECT_LT(result.history.size(), 50u);
}

// --- Per-class report / fused-N -------------------------------------------------------

TEST(PerClassReportTest, PerfectPredictorHasUnitScores) {
  // A fake "model" is overkill; test the report via a trained-enough
  // model on trivially separable data is flaky. Instead check report
  // arithmetic through the public API with an untrained model: support
  // must sum to the split size and metrics stay in [0, 1].
  SkeletonDataset dataset = SmallDataset();
  DatasetSplit split = dataset.RandomSplit(0.3f, 1);
  LayerPtr model =
      CreateModel(ModelKind::kStgcn, SkeletonLayoutType::kNtu25, 3,
                  TinyZoo());
  DataLoader loader(&dataset, split.test, 8, InputStream::kJoint, false);
  ClassificationReport report = EvaluatePerClass(*model, loader, 3);
  EXPECT_EQ(report.total, static_cast<int64_t>(split.test.size()));
  int64_t support_sum = 0;
  for (const ClassReport& c : report.classes) {
    support_sum += c.support;
    EXPECT_GE(c.precision, 0.0);
    EXPECT_LE(c.precision, 1.0);
    EXPECT_GE(c.recall, 0.0);
    EXPECT_LE(c.recall, 1.0);
    EXPECT_GE(c.f1, 0.0);
    EXPECT_LE(c.f1, 1.0);
  }
  EXPECT_EQ(support_sum, report.total);
  EXPECT_GE(report.macro_f1, 0.0);
  std::string text = report.ToString();
  EXPECT_NE(text.find("Precision"), std::string::npos);
}

TEST(FusedNTest, SingleStreamFusionMatchesEvaluate) {
  SkeletonDataset dataset = SmallDataset();
  DatasetSplit split = dataset.RandomSplit(0.3f, 1);
  LayerPtr model =
      CreateModel(ModelKind::kStgcn, SkeletonLayoutType::kNtu25, 3,
                  TinyZoo());
  DataLoader loader_a(&dataset, split.test, 8, InputStream::kJoint, false);
  DataLoader loader_b(&dataset, split.test, 8, InputStream::kJoint, false);
  EvalMetrics direct = Evaluate(*model, loader_a);
  EvalMetrics fused = EvaluateFusedN({model.get()}, {&loader_b});
  EXPECT_DOUBLE_EQ(fused.top1, direct.top1);
  EXPECT_DOUBLE_EQ(fused.top5, direct.top5);
}

TEST(FourStreamTest, RunsAndReportsAllStreams) {
  SkeletonDataset dataset = SmallDataset();
  DatasetSplit split = dataset.RandomSplit(0.3f, 1);
  TrainOptions options;
  options.epochs = 2;
  options.initial_lr = 0.05f;
  ModelZooOptions zoo = TinyZoo();
  FourStreamEval result = RunFourStreamExperiment(
      [&] {
        return CreateModel(ModelKind::kStgcn, dataset.layout_type(),
                           dataset.num_classes(), zoo);
      },
      dataset, split, options, 8, 71);
  int64_t n = static_cast<int64_t>(split.test.size());
  EXPECT_EQ(result.joint.count, n);
  EXPECT_EQ(result.bone.count, n);
  EXPECT_EQ(result.joint_motion.count, n);
  EXPECT_EQ(result.bone_motion.count, n);
  EXPECT_EQ(result.fused_two.count, n);
  EXPECT_EQ(result.fused_four.count, n);
}

// --- Motion streams in the DataLoader --------------------------------------------------

TEST(MotionStreamTest, JointMotionIsTemporalDifference) {
  SkeletonDataset dataset = SmallDataset();
  DataLoader joint_loader(&dataset, {0}, 1, InputStream::kJoint, false);
  DataLoader motion_loader(&dataset, {0}, 1, InputStream::kJointMotion,
                           false);
  Tensor joint_x = joint_loader.GetBatch(0).x;   // (1, 3, T, V)
  Tensor motion_x = motion_loader.GetBatch(0).x;
  int64_t t = joint_x.dim(2), v = joint_x.dim(3);
  for (int64_t frame = 0; frame + 1 < t; ++frame) {
    for (int64_t j = 0; j < v; j += 5) {
      EXPECT_NEAR(motion_x.at(0, 0, frame, j),
                  joint_x.at(0, 0, frame + 1, j) -
                      joint_x.at(0, 0, frame, j),
                  1e-5f);
    }
  }
  // Last frame is zero motion.
  for (int64_t j = 0; j < v; ++j) {
    EXPECT_FLOAT_EQ(motion_x.at(0, 0, t - 1, j), 0.0f);
  }
}

TEST(MotionStreamTest, StreamNames) {
  EXPECT_EQ(InputStreamName(InputStream::kJoint), "joint");
  EXPECT_EQ(InputStreamName(InputStream::kBone), "bone");
  EXPECT_EQ(InputStreamName(InputStream::kJointMotion), "joint-motion");
  EXPECT_EQ(InputStreamName(InputStream::kBoneMotion), "bone-motion");
}

TEST(AugmentedLoaderTest, AugmentationOnlyChangesTrainingData) {
  SkeletonDataset dataset = SmallDataset();
  DataLoader plain(&dataset, {0, 1}, 2, InputStream::kJoint, false);
  DataLoader augmented(&dataset, {0, 1}, 2, InputStream::kJoint, false,
                       Rng(9));
  augmented.SetAugmentation(AugmentationPipeline::Standard(10));
  Tensor a = plain.GetBatch(0).x;
  Tensor b = augmented.GetBatch(0).x;
  EXPECT_EQ(a.shape(), b.shape());
  EXPECT_FALSE(AllClose(a, b, 1e-4f, 1e-4f));
}

}  // namespace
}  // namespace dhgcn
