// Into-vs-legacy equivalence for every workspace-migrated layer:
//
//  1. Bit-exactness: ForwardInto/BackwardInto on one instance must
//     produce the same bits as Forward/Backward on an identically
//     constructed instance (outputs, input gradients, parameter
//     gradients). Both paths share one kernel, so this pins the
//     delegation plumbing, not floating-point luck.
//  2. Gradient correctness *through the Into path*: finite-difference
//     checking with every Forward/Backward routed through a Workspace.

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

#include "base/rng.h"
#include "core/dhgcn_model.h"
#include "core/dhst_block.h"
#include "core/dynamic_joint_weight.h"
#include "core/static_hypergraph.h"
#include "data/skeleton.h"
#include "gradcheck.h"
#include "hypergraph/hypergraph.h"
#include "hypergraph/hypergraph_conv.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/pooling.h"
#include "nn/relu.h"
#include "nn/sequential.h"
#include "tensor/tensor_ops.h"
#include "tensor/workspace.h"

namespace dhgcn {
namespace {

void ExpectBitEqual(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_TRUE(ShapesEqual(a.shape(), b.shape())) << what;
  for (int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a.flat(i), b.flat(i)) << what << " flat index " << i;
  }
}

/// Runs `legacy` through Forward/Backward and `planned` (an identically
/// constructed twin) through ForwardInto/BackwardInto, asserting
/// bit-equal outputs, input gradients and parameter gradients.
/// `check_backward=false` limits the comparison to the forward pass
/// (for layers whose backward is undefined in the current mode).
void ExpectIntoBitExact(Layer& legacy, Layer& planned, const Tensor& input,
                        bool check_backward = true, uint64_t grad_seed = 99) {
  Tensor y_legacy = legacy.Forward(input);

  Workspace ws;
  Tensor y_planned;
  planned.ForwardInto(input, ws, &y_planned);
  ExpectBitEqual(y_legacy, y_planned, "forward output");
  if (!check_backward) return;

  Rng grad_rng(grad_seed);
  Tensor grad_out = Tensor::RandomNormal(y_legacy.shape(), grad_rng);
  legacy.ZeroGrad();
  planned.ZeroGrad();
  Tensor gx_legacy = legacy.Backward(grad_out);
  Tensor gx_planned;
  planned.BackwardInto(grad_out, ws, &gx_planned);
  ExpectBitEqual(gx_legacy, gx_planned, "input gradient");

  std::vector<ParamRef> pl = legacy.Params();
  std::vector<ParamRef> pp = planned.Params();
  ASSERT_EQ(pl.size(), pp.size());
  for (size_t i = 0; i < pl.size(); ++i) {
    if (pl[i].grad == nullptr) continue;  // non-trainable buffer
    ExpectBitEqual(*pl[i].grad, *pp[i].grad, pl[i].name.c_str());
  }
}

/// Routes a layer's Forward/Backward through the workspace path so the
/// shared finite-difference checker exercises ForwardInto/BackwardInto.
/// Outputs are cloned out of the arena because the checker holds them
/// across calls (each Forward resets the arena).
class IntoAdapter : public Layer {
 public:
  explicit IntoAdapter(Layer& inner) : inner_(inner) {}

  Tensor Forward(const Tensor& input) override {
    ws_.Reset();
    Tensor out;
    inner_.ForwardInto(input, ws_, &out);
    return out.Clone();
  }

  Tensor Backward(const Tensor& grad_output) override {
    Tensor grad_input;
    inner_.BackwardInto(grad_output, ws_, &grad_input);
    return grad_input.Clone();
  }

  std::vector<ParamRef> Params() override { return inner_.Params(); }
  void SetTraining(bool training) override { inner_.SetTraining(training); }
  std::string name() const override { return inner_.name(); }

 private:
  Layer& inner_;
  Workspace ws_;
};

void ExpectIntoGradientsMatch(Layer& layer, const Tensor& input) {
  IntoAdapter adapter(layer);
  dhgcn::testing::ExpectGradientsMatch(adapter, input);
}

Hypergraph TestHypergraph() {
  return Hypergraph(6, {{0, 1, 2}, {2, 3}, {3, 4, 5}, {0, 5}});
}

// --- Linear ---------------------------------------------------------------------------

TEST(WorkspaceIntoTest, LinearBitExactAndGradCorrect) {
  Rng rng_a(11), rng_b(11);
  Linear legacy(6, 5, rng_a);
  Linear planned(6, 5, rng_b);
  Rng data_rng(12);
  Tensor x = Tensor::RandomNormal({4, 6}, data_rng);
  ExpectIntoBitExact(legacy, planned, x);
  ExpectIntoGradientsMatch(planned, x);
}

// --- Conv2d ---------------------------------------------------------------------------

TEST(WorkspaceIntoTest, Conv2dPointwiseBitExactAndGradCorrect) {
  Rng rng_a(21), rng_b(21);
  Conv2dOptions options;  // 1x1, stride 1 -> GEMM fast path
  Conv2d legacy(3, 8, options, rng_a);
  Conv2d planned(3, 8, options, rng_b);
  Rng data_rng(22);
  Tensor x = Tensor::RandomNormal({2, 3, 4, 6}, data_rng);
  ExpectIntoBitExact(legacy, planned, x);
  ExpectIntoGradientsMatch(planned, x);
}

TEST(WorkspaceIntoTest, Conv2dTemporalBitExactAndGradCorrect) {
  Rng rng_a(23), rng_b(23);
  Conv2dOptions options;  // strided, padded, dilated (k x 1) TCN shape
  options.kernel_h = 3;
  options.stride_h = 2;
  options.pad_h = 2;
  options.dilation_h = 2;
  Conv2d legacy(3, 4, options, rng_a);
  Conv2d planned(3, 4, options, rng_b);
  Rng data_rng(24);
  Tensor x = Tensor::RandomNormal({2, 3, 8, 5}, data_rng);
  ExpectIntoBitExact(legacy, planned, x);
  ExpectIntoGradientsMatch(planned, x);
}

// --- BatchNorm2d ----------------------------------------------------------------------

TEST(WorkspaceIntoTest, BatchNormTrainingBitExactAndGradCorrect) {
  BatchNorm2d legacy(5);
  BatchNorm2d planned(5);
  Rng data_rng(31);
  Tensor x = Tensor::RandomNormal({3, 5, 4, 2}, data_rng);
  ExpectIntoBitExact(legacy, planned, x);
  ExpectIntoGradientsMatch(planned, x);
}

TEST(WorkspaceIntoTest, BatchNormEvalBitExact) {
  BatchNorm2d legacy(4);
  BatchNorm2d planned(4);
  Rng data_rng(32);
  // One training step so running statistics are non-trivial, then eval.
  Tensor warm = Tensor::RandomNormal({2, 4, 3, 3}, data_rng);
  legacy.Forward(warm);
  planned.Forward(warm);
  legacy.SetTraining(false);
  planned.SetTraining(false);
  Tensor x = Tensor::RandomNormal({2, 4, 3, 3}, data_rng);
  // BN backward is only defined in training mode; compare forward only.
  ExpectIntoBitExact(legacy, planned, x, /*check_backward=*/false);
}

// --- ReLU / Dropout -------------------------------------------------------------------

TEST(WorkspaceIntoTest, ReLUBitExactAndGradCorrect) {
  ReLU legacy;
  ReLU planned;
  Rng data_rng(41);
  Tensor x = Tensor::RandomNormal({3, 7}, data_rng);
  // Keep finite differences away from the kink at zero.
  for (int64_t i = 0; i < x.numel(); ++i) {
    if (std::fabs(x.flat(i)) < 0.1f) x.flat(i) = 0.5f;
  }
  ExpectIntoBitExact(legacy, planned, x);
  ExpectIntoGradientsMatch(planned, x);
}

TEST(WorkspaceIntoTest, DropoutBitExact) {
  // Twin layers split from identically seeded parents draw identical
  // masks, so the two paths stay bit-comparable.
  Rng rng_a(51), rng_b(51);
  Dropout legacy(0.4f, rng_a);
  Dropout planned(0.4f, rng_b);
  Rng data_rng(52);
  Tensor x = Tensor::RandomNormal({4, 10}, data_rng);
  ExpectIntoBitExact(legacy, planned, x);

  legacy.SetTraining(false);
  planned.SetTraining(false);
  ExpectIntoBitExact(legacy, planned, x);
}

// --- Pooling --------------------------------------------------------------------------

TEST(WorkspaceIntoTest, GlobalAvgPoolBitExactAndGradCorrect) {
  GlobalAvgPool2d legacy;
  GlobalAvgPool2d planned;
  Rng data_rng(61);
  Tensor x = Tensor::RandomNormal({2, 3, 4, 5}, data_rng);
  ExpectIntoBitExact(legacy, planned, x);
  ExpectIntoGradientsMatch(planned, x);
}

TEST(WorkspaceIntoTest, TemporalAvgPoolBitExactAndGradCorrect) {
  TemporalAvgPool legacy(2, 2);
  TemporalAvgPool planned(2, 2);
  Rng data_rng(62);
  Tensor x = Tensor::RandomNormal({2, 3, 8, 4}, data_rng);
  ExpectIntoBitExact(legacy, planned, x);
  ExpectIntoGradientsMatch(planned, x);
}

// --- Sequential -----------------------------------------------------------------------

std::unique_ptr<Sequential> MakeStack(uint64_t seed) {
  Rng rng(seed);
  auto stack = std::make_unique<Sequential>();
  Conv2dOptions options;
  stack->Emplace<Conv2d>(3, 6, options, rng);
  stack->Emplace<BatchNorm2d>(6);
  stack->Emplace<ReLU>();
  return stack;
}

TEST(WorkspaceIntoTest, SequentialBitExactAndGradCorrect) {
  auto legacy = MakeStack(71);
  auto planned = MakeStack(71);
  Rng data_rng(72);
  Tensor x = Tensor::RandomNormal({2, 3, 4, 5}, data_rng);
  ExpectIntoBitExact(*legacy, *planned, x);
  ExpectIntoGradientsMatch(*planned, x);
}

// --- Hypergraph mixers ----------------------------------------------------------------

TEST(WorkspaceIntoTest, VertexMixBitExactAndGradCorrect) {
  Rng op_rng(81);
  Tensor op = Tensor::RandomNormal({6, 6}, op_rng);
  VertexMix legacy(op.Clone(), /*learnable=*/true);
  VertexMix planned(op.Clone(), /*learnable=*/true);
  Rng data_rng(82);
  Tensor x = Tensor::RandomNormal({2, 3, 4, 6}, data_rng);
  ExpectIntoBitExact(legacy, planned, x);
  ExpectIntoGradientsMatch(planned, x);
}

TEST(WorkspaceIntoTest, DynamicVertexMixBitExact) {
  Rng op_rng(83);
  Tensor ops = Tensor::RandomNormal({2, 4, 6, 6}, op_rng);
  DynamicVertexMix legacy;
  DynamicVertexMix planned;
  legacy.SetOperators(ops);
  planned.SetOperators(ops);
  Rng data_rng(84);
  Tensor x = Tensor::RandomNormal({2, 3, 4, 6}, data_rng);
  ExpectIntoBitExact(legacy, planned, x);
}

TEST(WorkspaceIntoTest, LearnableHyperedgeMixBitExactAndGradCorrect) {
  Hypergraph h = TestHypergraph();
  LearnableHyperedgeMix legacy(h);
  LearnableHyperedgeMix planned(h);
  Rng data_rng(85);
  Tensor x = Tensor::RandomNormal({2, 3, 4, 6}, data_rng);
  ExpectIntoBitExact(legacy, planned, x);
  ExpectIntoGradientsMatch(planned, x);
}

TEST(WorkspaceIntoTest, NormalizedHypergraphOperatorMatchesLegacy) {
  Hypergraph h = TestHypergraph();
  Tensor legacy = NormalizedHypergraphOperator(h);
  Workspace ws;
  Tensor planned = NormalizedHypergraphOperator(h, &ws);
  EXPECT_FALSE(planned.owns_storage());
  ExpectBitEqual(legacy, planned, "hypergraph operator");
}

// --- Loss -----------------------------------------------------------------------------

TEST(WorkspaceIntoTest, SoftmaxCrossEntropyBitExact) {
  SoftmaxCrossEntropy legacy(0.1f);
  SoftmaxCrossEntropy planned(0.1f);
  Rng data_rng(91);
  Tensor logits = Tensor::RandomNormal({4, 5}, data_rng);
  std::vector<int64_t> labels = {0, 2, 4, 1};

  float loss_legacy = legacy.TryForward(logits, labels).ValueOrDie();
  Workspace ws;
  float loss_planned = planned.TryForward(logits, labels, ws).ValueOrDie();
  EXPECT_EQ(loss_legacy, loss_planned);

  Tensor grad_legacy = legacy.Backward();
  Tensor grad_planned = planned.Backward(ws);
  EXPECT_FALSE(grad_planned.owns_storage());
  ExpectBitEqual(grad_legacy, grad_planned, "loss gradient");
}

// --- DHST block -----------------------------------------------------------------------

DhstBlockOptions SmallBlockOptions(int64_t in, int64_t out) {
  DhstBlockOptions options;
  options.in_channels = in;
  options.out_channels = out;
  options.topology.kn = 2;
  options.topology.km = 2;
  return options;
}

TEST(WorkspaceIntoTest, DhstBlockBitExact) {
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kKinetics18);
  Hypergraph h = StaticSkeletonHypergraph(layout);
  Rng rng_a(101), rng_b(101);
  DhstBlock legacy(SmallBlockOptions(3, 4), h, rng_a);
  DhstBlock planned(SmallBlockOptions(3, 4), h, rng_b);
  Rng data_rng(102);
  Tensor x = Tensor::RandomNormal({2, 3, 4, 18}, data_rng);
  Tensor joint_ops = DynamicJointWeightOperators(x, h);

  Tensor y_legacy = legacy.Forward(x, joint_ops);
  Workspace ws;
  Tensor y_planned;
  planned.ForwardInto(x, joint_ops, ws, &y_planned);
  ExpectBitEqual(y_legacy, y_planned, "block forward");

  Rng grad_rng(103);
  Tensor grad_out = Tensor::RandomNormal(y_legacy.shape(), grad_rng);
  Tensor gx_legacy = legacy.Backward(grad_out);
  Tensor gx_planned;
  planned.BackwardInto(grad_out, ws, &gx_planned);
  ExpectBitEqual(gx_legacy, gx_planned, "block input gradient");

  std::vector<ParamRef> pl = legacy.Params();
  std::vector<ParamRef> pp = planned.Params();
  ASSERT_EQ(pl.size(), pp.size());
  for (size_t i = 0; i < pl.size(); ++i) {
    if (pl[i].grad == nullptr) continue;  // non-trainable buffer
    ExpectBitEqual(*pl[i].grad, *pp[i].grad, pl[i].name.c_str());
  }
}

// --- Full model -----------------------------------------------------------------------

TEST(WorkspaceIntoTest, DhgcnModelBitExact) {
  DhgcnConfig config =
      DhgcnConfig::Tiny(SkeletonLayoutType::kKinetics18, /*num_classes=*/5);
  DhgcnModel legacy(config);
  DhgcnModel planned(config);
  Rng data_rng(111);
  Tensor x = Tensor::RandomNormal({2, 3, 8, 18}, data_rng);
  ExpectIntoBitExact(legacy, planned, x);
}

}  // namespace
}  // namespace dhgcn
