// Lifecycle and contract tests for the intra-op ThreadPool: static
// contiguous partitioning, serial fallback, reconfiguration, reduction
// determinism, and rejection of nested parallel regions. Also the
// binary the ThreadSanitizer CI job runs to prove the pool's
// synchronization protocol is race-free.

#include "base/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

namespace dhgcn {
namespace {

// Restores the pool size on scope exit so tests stay order-independent.
class ThreadPoolGuard {
 public:
  explicit ThreadPoolGuard(int64_t n)
      : previous_(ThreadPool::Get().thread_count()) {
    ThreadPool::Get().SetThreads(n);
  }
  ~ThreadPoolGuard() { ThreadPool::Get().SetThreads(previous_); }

 private:
  int64_t previous_;
};

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (int64_t threads : {1, 2, 7}) {
    ThreadPoolGuard pool(threads);
    const int64_t range = 103;
    std::vector<int64_t> hits(range, 0);
    int64_t* phits = hits.data();
    ThreadPool::Get().ParallelFor(0, range, /*grain=*/7,
                                  [&](int64_t b, int64_t e) {
                                    for (int64_t i = b; i < e; ++i) {
                                      ++phits[i];
                                    }
                                  });
    for (int64_t i = 0; i < range; ++i) {
      EXPECT_EQ(hits[static_cast<size_t>(i)], 1)
          << "index " << i << " at threads=" << threads;
    }
  }
}

TEST(ThreadPool, ChunkBoundariesIndependentOfThreadCount) {
  const int64_t begin = 5, end = 83, grain = 9;
  const int64_t chunks = (end - begin + grain - 1) / grain;

  auto record = [&] {
    std::vector<std::pair<int64_t, int64_t>> seen(
        static_cast<size_t>(chunks), {-1, -1});
    auto* pseen = seen.data();
    ThreadPool::Get().ParallelFor(
        begin, end, grain, [&](int64_t b, int64_t e) {
          pseen[(b - begin) / grain] = {b, e};
        });
    return seen;
  };

  ThreadPool::Get().SetThreads(1);
  std::vector<std::pair<int64_t, int64_t>> serial = record();
  for (int64_t c = 0; c < chunks; ++c) {
    int64_t b = begin + c * grain;
    EXPECT_EQ(serial[static_cast<size_t>(c)].first, b);
    EXPECT_EQ(serial[static_cast<size_t>(c)].second,
              std::min(end, b + grain));
  }
  for (int64_t threads : {2, 3, 7}) {
    ThreadPool::Get().SetThreads(threads);
    EXPECT_EQ(record(), serial) << "threads=" << threads;
  }
  ThreadPool::Get().SetThreads(1);
}

TEST(ThreadPool, EmptyRangeNeverInvokesTask) {
  for (int64_t threads : {1, 4}) {
    ThreadPoolGuard pool(threads);
    bool called = false;
    ThreadPool::Get().ParallelFor(3, 3, 5,
                                  [&](int64_t, int64_t) { called = true; });
    ThreadPool::Get().ParallelFor(7, 3, 5,
                                  [&](int64_t, int64_t) { called = true; });
    EXPECT_FALSE(called);
  }
}

TEST(ThreadPool, RangeSmallerThanGrainIsOneChunk) {
  ThreadPoolGuard pool(4);
  int64_t calls = 0;
  int64_t seen_begin = -1, seen_end = -1;
  ThreadPool::Get().ParallelFor(2, 6, /*grain=*/100,
                                [&](int64_t b, int64_t e) {
                                  ++calls;
                                  seen_begin = b;
                                  seen_end = e;
                                });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen_begin, 2);
  EXPECT_EQ(seen_end, 6);
}

TEST(ThreadPool, SetThreadsReconfigures) {
  ThreadPool& pool = ThreadPool::Get();
  int64_t original = pool.thread_count();
  pool.SetThreads(3);
  EXPECT_EQ(pool.thread_count(), 3);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(0, 64, 4, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 64 * 63 / 2);
  pool.SetThreads(1);
  EXPECT_EQ(pool.thread_count(), 1);
  pool.SetThreads(5);
  EXPECT_EQ(pool.thread_count(), 5);
  pool.SetThreads(original);
}

TEST(ThreadPool, InParallelRegionFlag) {
  ThreadPoolGuard pool(2);
  EXPECT_FALSE(ThreadPool::InParallelRegion());
  std::atomic<int64_t> inside{0};
  ThreadPool::Get().ParallelFor(0, 8, 1, [&](int64_t, int64_t) {
    if (ThreadPool::InParallelRegion()) inside.fetch_add(1);
  });
  EXPECT_EQ(inside.load(), 8);
  EXPECT_FALSE(ThreadPool::InParallelRegion());
}

TEST(ThreadPoolDeathTest, NestedParallelForIsRejected) {
  // Serial pool: the fork in the death test then happens with no live
  // worker threads, and the serial fallback enforces the same contract.
  ThreadPoolGuard pool(1);
  EXPECT_DEATH(ThreadPool::Get().ParallelFor(
                   0, 4, 1,
                   [](int64_t, int64_t) {
                     ThreadPool::Get().ParallelFor(
                         0, 2, 1, [](int64_t, int64_t) {});
                   }),
               "DHGCN_CHECK");
}

TEST(ThreadPoolDeathTest, SetThreadsRejectsNonPositive) {
  ThreadPoolGuard pool(1);
  EXPECT_DEATH(ThreadPool::Get().SetThreads(0), "DHGCN_CHECK");
}

TEST(ThreadPool, ReduceSumMatchesSerialLoop) {
  // Small enough that no chunk-cap widening kicks in: chunk partials at
  // grain 8 reproduce the serial per-chunk double sums exactly.
  const int64_t n = 24;
  auto term = [](int64_t i) {
    return static_cast<double>(i % 7) * 0.25 + 1.0;
  };
  double expected = 0.0;
  for (int64_t i = 0; i < n; ++i) expected += term(i);
  for (int64_t threads : {1, 2, 7}) {
    ThreadPoolGuard pool(threads);
    double got = ThreadPool::Get().ParallelReduceSum(
        0, n, 8, [&](int64_t b, int64_t e) {
          double t = 0.0;
          for (int64_t i = b; i < e; ++i) t += term(i);
          return t;
        });
    EXPECT_EQ(got, expected) << "threads=" << threads;
  }
}

TEST(ThreadPool, ReduceSumBitIdenticalAcrossThreadCounts) {
  // Pathological float-ish terms where summation order matters; the
  // fixed ascending-chunk combine must give identical bits for 1..N
  // threads even when the serial whole-range sum would differ.
  const int64_t n = 1000;
  auto term = [](int64_t i) {
    return (i % 2 == 0 ? 1.0e16 : 1.0) / static_cast<double>(i + 1);
  };
  auto run = [&] {
    return ThreadPool::Get().ParallelReduceSum(
        0, n, 1, [&](int64_t b, int64_t e) {
          double t = 0.0;
          for (int64_t i = b; i < e; ++i) t += term(i);
          return t;
        });
  };
  ThreadPool::Get().SetThreads(1);
  double serial = run();
  for (int64_t threads : {2, 3, 7}) {
    ThreadPool::Get().SetThreads(threads);
    double parallel = run();
    EXPECT_EQ(parallel, serial) << "threads=" << threads;
  }
  ThreadPool::Get().SetThreads(1);
}

TEST(ThreadPool, ReduceSumCapsChunkCount) {
  ThreadPoolGuard pool(4);
  std::atomic<int64_t> calls{0};
  ThreadPool::Get().ParallelReduceSum(
      0, 100000, 1, [&](int64_t b, int64_t e) {
        calls.fetch_add(1);
        return static_cast<double>(e - b);
      });
  EXPECT_LE(calls.load(), ThreadPool::kMaxReduceChunks);
  EXPECT_GT(calls.load(), 1);
}

TEST(ThreadPool, ManyConsecutiveJobs) {
  // Back-to-back jobs exercise the straggler-safe publication protocol:
  // a worker still draining job k must not corrupt job k+1.
  ThreadPoolGuard pool(4);
  for (int64_t round = 0; round < 200; ++round) {
    std::atomic<int64_t> sum{0};
    ThreadPool::Get().ParallelFor(0, 32, 1, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) sum.fetch_add(i + round);
    });
    ASSERT_EQ(sum.load(), 32 * 31 / 2 + 32 * round) << "round " << round;
  }
}

}  // namespace
}  // namespace dhgcn
