#include "io/serialization.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "gtest/gtest.h"

#include "base/rng.h"
#include "core/dhgcn_model.h"
#include "nn/linear.h"
#include "nn/sequential.h"
#include "tensor/tensor_ops.h"

namespace dhgcn {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(TensorIoTest, RoundTripPreservesShapeAndData) {
  Rng rng(1);
  Tensor original = Tensor::RandomNormal({3, 4, 5}, rng);
  std::stringstream stream;
  ASSERT_TRUE(WriteTensor(stream, original).ok());
  Result<Tensor> loaded = ReadTensor(stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(AllClose(*loaded, original, 0.0f, 0.0f));
}

TEST(TensorIoTest, ScalarRoundTrip) {
  std::stringstream stream;
  ASSERT_TRUE(WriteTensor(stream, Tensor::Scalar(-2.5f)).ok());
  Result<Tensor> loaded = ReadTensor(stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->ndim(), 0);
  EXPECT_FLOAT_EQ(loaded->flat(0), -2.5f);
}

TEST(TensorIoTest, TruncatedStreamFails) {
  Rng rng(2);
  Tensor original = Tensor::RandomNormal({8, 8}, rng);
  std::stringstream stream;
  ASSERT_TRUE(WriteTensor(stream, original).ok());
  std::string bytes = stream.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  Result<Tensor> loaded = ReadTensor(truncated);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST(ParametersIoTest, SaveLoadRoundTrip) {
  Rng rng(3);
  Linear source(6, 4, rng);
  Linear target(6, 4, rng);  // different random init
  std::string path = TempPath("linear.ckpt");
  ASSERT_TRUE(SaveParameters(path, source).ok());
  ASSERT_TRUE(LoadParameters(path, target).ok());
  EXPECT_TRUE(AllClose(target.weight(), source.weight(), 0.0f, 0.0f));
  EXPECT_TRUE(AllClose(target.bias(), source.bias(), 0.0f, 0.0f));
  std::remove(path.c_str());
}

TEST(ParametersIoTest, LoadRejectsWrongArchitecture) {
  Rng rng(4);
  Linear source(6, 4, rng);
  Linear wrong_shape(6, 5, rng);
  Sequential wrong_count;
  wrong_count.Emplace<Linear>(6, 4, rng);
  wrong_count.Emplace<Linear>(4, 2, rng);

  std::string path = TempPath("linear2.ckpt");
  ASSERT_TRUE(SaveParameters(path, source).ok());
  Status shape_status = LoadParameters(path, wrong_shape);
  EXPECT_TRUE(shape_status.IsInvalidArgument());
  EXPECT_NE(shape_status.message().find("shape mismatch"),
            std::string::npos);
  Status count_status = LoadParameters(path, wrong_count);
  EXPECT_TRUE(count_status.IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(ParametersIoTest, LoadDoesNotMutateOnFailure) {
  // Validate-then-commit: a failed load must leave the target untouched.
  Rng rng(5);
  Linear source(3, 3, rng);
  Linear target(3, 2, rng);
  Tensor before = target.weight().Clone();
  std::string path = TempPath("linear3.ckpt");
  ASSERT_TRUE(SaveParameters(path, source).ok());
  EXPECT_FALSE(LoadParameters(path, target).ok());
  EXPECT_TRUE(AllClose(target.weight(), before, 0.0f, 0.0f));
  std::remove(path.c_str());
}

TEST(ParametersIoTest, MissingFileIsIoError) {
  Rng rng(6);
  Linear model(2, 2, rng);
  Status status = LoadParameters(TempPath("does_not_exist.ckpt"), model);
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

TEST(ParametersIoTest, CorruptMagicRejected) {
  std::string path = TempPath("corrupt.ckpt");
  {
    std::ofstream os(path, std::ios::binary);
    os << "NOPE garbage";
  }
  Rng rng(7);
  Linear model(2, 2, rng);
  Status status = LoadParameters(path, model);
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_NE(status.message().find("magic"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ParametersIoTest, LoadParameterMapListsEntries) {
  Rng rng(8);
  Linear model(3, 2, rng);
  std::string path = TempPath("map.ckpt");
  ASSERT_TRUE(SaveParameters(path, model).ok());
  auto entries = LoadParameterMap(path);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);
  EXPECT_EQ(entries->count("weight"), 1u);
  EXPECT_EQ(entries->count("bias"), 1u);
  EXPECT_EQ(entries->at("weight").shape(), (Shape{2, 3}));
  std::remove(path.c_str());
}

TEST(ParametersIoTest, FullDhgcnModelRoundTrip) {
  DhgcnConfig config = DhgcnConfig::Tiny(SkeletonLayoutType::kKinetics18, 4);
  config.topology.kn = 2;
  config.topology.km = 2;
  auto source = DhgcnModel::Make(config).MoveValue();
  config.seed = 999;  // different init
  auto target = DhgcnModel::Make(config).MoveValue();

  Rng rng(9);
  Tensor x = Tensor::RandomNormal({1, 3, 8, 18}, rng, 0.0f, 0.4f);
  source->SetTraining(false);
  target->SetTraining(false);
  Tensor before = target->Forward(x);

  std::string path = TempPath("dhgcn.ckpt");
  ASSERT_TRUE(SaveParameters(path, *source).ok());
  ASSERT_TRUE(LoadParameters(path, *target).ok());
  // After loading, the two models must agree exactly on any input.
  Tensor source_logits = source->Forward(x);
  Tensor target_logits = target->Forward(x);
  EXPECT_TRUE(AllClose(target_logits, source_logits, 1e-6f, 1e-7f));
  EXPECT_FALSE(AllClose(before, source_logits, 1e-3f, 1e-3f));
  std::remove(path.c_str());
}

TEST(ParametersIoTest, BatchNormRunningStatsAreCheckpointed) {
  // Regression test: running statistics are non-trainable state but must
  // survive a save/load cycle, or a reloaded model evaluates with fresh
  // (wrong) statistics.
  DhgcnConfig config = DhgcnConfig::Tiny(SkeletonLayoutType::kKinetics18, 3);
  config.topology.kn = 2;
  config.topology.km = 2;
  auto source = DhgcnModel::Make(config).MoveValue();
  Rng rng(11);
  // A few training-mode forwards move the running statistics away from
  // their (0, 1) initialization.
  source->SetTraining(true);
  for (int step = 0; step < 3; ++step) {
    Tensor x = Tensor::RandomNormal({4, 3, 8, 18}, rng, 1.0f, 2.0f);
    source->Forward(x);
  }
  source->SetTraining(false);
  Tensor probe = Tensor::RandomNormal({2, 3, 8, 18}, rng);
  Tensor expected = source->Forward(probe);

  std::string path = TempPath("bn_stats.ckpt");
  ASSERT_TRUE(SaveParameters(path, *source).ok());
  config.seed = 123;
  auto target = DhgcnModel::Make(config).MoveValue();
  ASSERT_TRUE(LoadParameters(path, *target).ok());
  target->SetTraining(false);
  EXPECT_TRUE(AllClose(target->Forward(probe), expected, 1e-6f, 1e-7f));
  std::remove(path.c_str());
}

TEST(CheckpointTest, MetadataRoundTrip) {
  Rng rng(10);
  Linear model(4, 4, rng);
  std::string path = TempPath("meta.ckpt");
  Checkpoint saved;
  saved.epoch = 17;
  saved.best_metric = 0.875;
  ASSERT_TRUE(SaveCheckpoint(path, model, saved).ok());
  Linear target(4, 4, rng);
  Result<Checkpoint> loaded = LoadCheckpoint(path, target);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->epoch, 17);
  EXPECT_DOUBLE_EQ(loaded->best_metric, 0.875);
  EXPECT_TRUE(AllClose(target.weight(), model.weight(), 0.0f, 0.0f));
  std::remove(path.c_str());
  std::remove((path + ".meta").c_str());
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::stringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

Checkpoint MakeTrainerCheckpoint() {
  Rng rng(20);
  Checkpoint saved;
  saved.epoch = 5;
  saved.best_metric = 0.5;
  saved.trainer.optimizer = "adam";
  saved.trainer.adam_step_count = 123;
  saved.trainer.loader_rng = "17 42\n4711 8";
  saved.trainer.slots.push_back(
      {"adam_m/weight", Tensor::RandomNormal({4, 4}, rng)});
  saved.trainer.slots.push_back(
      {"adam_v/weight", Tensor::RandomNormal({4, 4}, rng)});
  return saved;
}

TEST(CheckpointTest, TrainerStateRoundTrip) {
  Rng rng(11);
  Linear model(4, 4, rng);
  std::string path = TempPath("trainer_state.ckpt");
  Checkpoint saved = MakeTrainerCheckpoint();
  ASSERT_TRUE(SaveCheckpoint(path, model, saved).ok());
  Linear target(4, 4, rng);
  Result<Checkpoint> loaded = LoadCheckpoint(path, target);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->epoch, 5);
  EXPECT_EQ(loaded->trainer.optimizer, "adam");
  EXPECT_EQ(loaded->trainer.adam_step_count, 123);
  EXPECT_EQ(loaded->trainer.loader_rng, saved.trainer.loader_rng);
  ASSERT_EQ(loaded->trainer.slots.size(), 2u);
  EXPECT_EQ(loaded->trainer.slots[0].name, "adam_m/weight");
  EXPECT_TRUE(AllClose(loaded->trainer.slots[0].value,
                       saved.trainer.slots[0].value, 0.0f, 0.0f));
  EXPECT_TRUE(AllClose(loaded->trainer.slots[1].value,
                       saved.trainer.slots[1].value, 0.0f, 0.0f));
  std::remove(path.c_str());
}

TEST(CheckpointTest, TruncatedFileIsIoErrorAndLeavesModelIntact) {
  Rng rng(12);
  Linear model(4, 4, rng);
  std::string path = TempPath("truncated.ckpt");
  ASSERT_TRUE(SaveCheckpoint(path, model, MakeTrainerCheckpoint()).ok());
  std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 32u);
  for (size_t keep : {bytes.size() - 3, bytes.size() / 2, size_t{7}}) {
    WriteFileBytes(path, bytes.substr(0, keep));
    Linear target(4, 4, rng);
    Tensor before = target.weight().Clone();
    Result<Checkpoint> loaded = LoadCheckpoint(path, target);
    ASSERT_FALSE(loaded.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
    // Validate-then-commit: a torn file must not half-update the model.
    EXPECT_TRUE(AllClose(target.weight(), before, 0.0f, 0.0f));
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, FlippedByteFailsCrc) {
  Rng rng(13);
  Linear model(4, 4, rng);
  std::string path = TempPath("bitflip.ckpt");
  ASSERT_TRUE(SaveCheckpoint(path, model, MakeTrainerCheckpoint()).ok());
  std::string bytes = ReadFileBytes(path);
  // Flip one payload byte past the header (magic+version+flags+count=20).
  bytes[40] = static_cast<char>(bytes[40] ^ 0x5a);
  WriteFileBytes(path, bytes);
  Linear target(4, 4, rng);
  Result<Checkpoint> loaded = LoadCheckpoint(path, target);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  EXPECT_NE(loaded.status().message().find("CRC"), std::string::npos)
      << loaded.status().message();
  std::remove(path.c_str());
}

TEST(CheckpointTest, WrongArchitectureRejected) {
  Rng rng(14);
  Linear model(4, 4, rng);
  std::string path = TempPath("wrong_arch.ckpt");
  ASSERT_TRUE(SaveCheckpoint(path, model, MakeTrainerCheckpoint()).ok());
  Linear target(6, 4, rng);  // different input width
  Result<Checkpoint> loaded = LoadCheckpoint(path, target);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, WeightsOnlyFileRejectedWithClearMessage) {
  Rng rng(15);
  Linear model(4, 4, rng);
  std::string path = TempPath("weights_only.ckpt");
  ASSERT_TRUE(SaveParameters(path, model).ok());
  Linear target(4, 4, rng);
  Result<Checkpoint> loaded = LoadCheckpoint(path, target);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("weights-only"),
            std::string::npos)
      << loaded.status().message();
  std::remove(path.c_str());
}

// Handcrafts a v1 file (no flags word, no CRC framing, sidecar .meta) to
// pin the backward-compat read path against bytes from older releases.
TEST(CheckpointTest, ReadsV1FilesWithSidecarMeta) {
  Rng rng(16);
  Linear model(4, 4, rng);
  Linear source(4, 4, rng);  // weights to embed, distinct from `model`
  std::string path = TempPath("v1.ckpt");

  std::ostringstream os;
  os.write("DHGW", 4);
  auto write_u32 = [&os](uint32_t v) {
    os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  auto write_u64 = [&os](uint64_t v) {
    os.write(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  write_u32(1);  // version: v1 has no flags word after this
  std::vector<ParamRef> params = source.Params();
  write_u64(params.size());
  for (ParamRef& p : params) {
    write_u64(p.name.size());
    os.write(p.name.data(), static_cast<std::streamsize>(p.name.size()));
    ASSERT_TRUE(WriteTensor(os, *p.value).ok());
  }
  WriteFileBytes(path, os.str());
  {
    std::ofstream meta(path + ".meta");
    meta << 9 << " " << 0.25;
  }

  Result<Checkpoint> loaded = LoadCheckpoint(path, model);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->epoch, 9);
  EXPECT_DOUBLE_EQ(loaded->best_metric, 0.25);
  EXPECT_TRUE(loaded->trainer.optimizer.empty());  // v1 has no trainer state
  EXPECT_TRUE(AllClose(model.weight(), source.weight(), 0.0f, 0.0f));

  // LoadParameters also still accepts the v1 byte layout.
  Linear again(4, 4, rng);
  ASSERT_TRUE(LoadParameters(path, again).ok());
  EXPECT_TRUE(AllClose(again.weight(), source.weight(), 0.0f, 0.0f));
  std::remove(path.c_str());
  std::remove((path + ".meta").c_str());
}

TEST(AtomicWriteTest, LeavesNoTmpFileBehind) {
  std::string path = TempPath("atomic.bin");
  ASSERT_TRUE(WriteFileAtomic(path, "payload").ok());
  EXPECT_EQ(ReadFileBytes(path), "payload");
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.is_open());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dhgcn
