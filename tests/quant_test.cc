// Post-training int8 quantization (DESIGN.md §15): helper round-trips,
// int8 kernel equivalence against a plain integer reference over
// tile-straddling shapes, the freeze-time plan rewrite, and the two
// acceptance budgets — end-to-end top-1 within 1% of fp32 and the
// ≤10-owning-alloc steady-state replay budget.

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "gtest/gtest.h"

#include "base/alloc_stats.h"
#include "base/rng.h"
#include "core/dhgcn_model.h"
#include "data/dataloader.h"
#include "data/dataset.h"
#include "data/synthetic_generator.h"
#include "plan/plan_builder.h"
#include "plan/plan_runner.h"
#include "quant/calibration.h"
#include "quant/quant.h"
#include "quant/quant_ops.h"
#include "quant/quantize_pass.h"
#include "tensor/gemm_kernel_int8.h"
#include "train/evaluator.h"
#include "train/experiment.h"

namespace dhgcn {
namespace {

// --- Quantization helpers --------------------------------------------

TEST(QuantTest, ActScaleFromAbsMax) {
  EXPECT_FLOAT_EQ(ActScaleFromAbsMax(12.7f), 0.1f);
  EXPECT_EQ(ActScaleFromAbsMax(0.0f), 0.0f);
  EXPECT_EQ(ActScaleFromAbsMax(-1.0f), 0.0f);
  EXPECT_EQ(ActScaleFromAbsMax(std::numeric_limits<float>::quiet_NaN()),
            0.0f);
  EXPECT_EQ(ActScaleFromAbsMax(std::numeric_limits<float>::infinity()),
            0.0f);
}

TEST(QuantTest, ActivationRoundTripWithinHalfStep) {
  Rng rng(40);
  const float absmax = 3.0f;
  const float scale = ActScaleFromAbsMax(absmax);
  std::vector<float> x(257);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.Uniform() * 2.0f * absmax - absmax;
  }
  x[0] = 0.0f;  // must encode exactly as the zero point
  std::vector<uint8_t> q(x.size());
  QuantizeActivations(x.data(), static_cast<int64_t>(x.size()), scale,
                      q.data());
  EXPECT_EQ(q[0], kInt8ActZeroPoint);
  for (size_t i = 0; i < x.size(); ++i) {
    float back = (static_cast<int32_t>(q[i]) - kInt8ActZeroPoint) * scale;
    EXPECT_LE(std::abs(back - x[i]), scale * 0.5f + 1e-6f)
        << "i=" << i << " x=" << x[i];
  }
}

TEST(QuantTest, ActivationEdgeCasesSaturate) {
  const float inf = std::numeric_limits<float>::infinity();
  const float x[5] = {inf, -inf, std::numeric_limits<float>::quiet_NaN(),
                      1e10f, -1e10f};
  uint8_t q[5];
  QuantizeActivations(x, 5, 0.1f, q);
  EXPECT_EQ(q[0], 255);  // +127 + 128
  EXPECT_EQ(q[1], 1);    // -127 + 128
  EXPECT_EQ(q[2], 1);    // NaN clamps low
  EXPECT_EQ(q[3], 255);
  EXPECT_EQ(q[4], 1);

  // A degenerate (<= 0) scale encodes everything as exact zero.
  const float y[3] = {1.0f, -2.0f, 0.0f};
  uint8_t qz[3];
  QuantizeActivations(y, 3, 0.0f, qz);
  for (uint8_t v : qz) EXPECT_EQ(v, kInt8ActZeroPoint);
}

TEST(QuantTest, WeightsPerChannelRoundTrip) {
  Rng rng(41);
  const int64_t channels = 5;
  const int64_t per_channel = 37;
  std::vector<float> w(channels * per_channel);
  for (auto& v : w) v = rng.Uniform() * 4.0f - 2.0f;
  // Channel 2 is all-zero: scale 0, all-zero codes, exact dequant.
  for (int64_t j = 0; j < per_channel; ++j) w[2 * per_channel + j] = 0.0f;

  std::vector<int8_t> q(w.size());
  std::vector<float> scales(channels);
  QuantizeWeightsPerChannel(w.data(), channels, per_channel, q.data(),
                            scales.data());

  EXPECT_EQ(scales[2], 0.0f);
  for (int64_t c = 0; c < channels; ++c) {
    for (int64_t j = 0; j < per_channel; ++j) {
      int8_t code = q[c * per_channel + j];
      ASSERT_LE(std::abs(static_cast<int>(code)),
                detail::kInt8WeightMax);
      float back = code * scales[c];
      float orig = w[c * per_channel + j];
      float tol = (scales[c] > 0.0f) ? scales[c] * 0.5f + 1e-6f : 1e-6f;
      EXPECT_LE(std::abs(back - orig), tol)
          << "channel " << c << " tap " << j;
    }
  }
}

// --- Int8 kernel vs plain-integer reference --------------------------

// Raw-product reference: c[i,j] = sum_k a[i, k] * b[k, j] in exact
// int32, straight off the unpacked operands.
void ReferenceInt8Gemm(const std::vector<uint8_t>& a, int64_t lda,
                       const std::vector<int8_t>& b, int64_t m,
                       int64_t k, int64_t n, std::vector<int32_t>* c) {
  c->assign(m * n, 0);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      int32_t av = a[i * lda + kk];
      for (int64_t j = 0; j < n; ++j) {
        (*c)[i * n + j] += av * static_cast<int32_t>(b[kk * n + j]);
      }
    }
  }
}

void FillInt8Operands(int64_t m, int64_t k, int64_t lda, int64_t n,
                      Rng& rng, std::vector<uint8_t>* a,
                      std::vector<int8_t>* b) {
  a->assign(m * lda, 128);  // pad bytes hold the quantized 0.0f
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      (*a)[i * lda + kk] =
          static_cast<uint8_t>(1 + rng.Uniform() * 254.0f);
    }
  }
  b->assign(k * n, 0);
  for (auto& v : *b) {
    v = static_cast<int8_t>(
        std::lround(rng.Uniform() * 2.0f * detail::kInt8WeightMax) -
        detail::kInt8WeightMax);
  }
}

TEST(QuantTest, Int8GemmMatchesIntegerReference) {
  // Shapes straddling the kInt8MR x kInt8NR register tile, the
  // kInt8KStep packing group, and (last case) the kInt8KC reduction
  // block boundary at k = 8192.
  struct Case {
    int64_t m, k, n;
  };
  const Case kShapes[] = {{1, 1, 1},     {4, 8, 16},   {3, 5, 7},
                          {8, 16, 32},   {61, 67, 53}, {64, 72, 48},
                          {5, 8200, 16}, {17, 40, 130}};
  Rng rng(42);
  for (const Case& c : kShapes) {
    const int64_t k_pad = detail::Int8KPad(c.k);
    std::vector<uint8_t> a;
    std::vector<int8_t> b;
    FillInt8Operands(c.m, c.k, k_pad, c.n, rng, &a, &b);
    std::vector<int8_t> bp(detail::Int8PackedBCount(c.k, c.n));
    detail::Int8PackB(b.data(), c.k, c.n, bp.data());

    std::vector<int32_t> got(c.m * c.n, -1);
    detail::Int8GemmPackedB(a.data(), k_pad, bp.data(), got.data(), c.m,
                            k_pad, c.n);
    std::vector<int32_t> want;
    ReferenceInt8Gemm(a, k_pad, b, c.m, c.k, c.n, &want);
    ASSERT_EQ(std::memcmp(got.data(), want.data(),
                          got.size() * sizeof(int32_t)),
              0)
        << "shape " << c.m << "x" << c.k << "x" << c.n;

    // Column sums feed the zero-point compensation term.
    std::vector<int32_t> sums(c.n);
    detail::Int8PackColumnSums(b.data(), c.k, c.n, sums.data());
    for (int64_t j = 0; j < c.n; ++j) {
      int32_t s = 0;
      for (int64_t kk = 0; kk < c.k; ++kk) s += b[kk * c.n + j];
      ASSERT_EQ(sums[j], s) << "column " << j;
    }
  }
}

TEST(QuantTest, Int8GemmRowSplitInvariant) {
  // The kernel contract: computing disjoint row ranges in separate
  // calls (as the ParallelFor wrapper does) is bit-identical to one
  // call — including splits off the kInt8MR grid.
  const int64_t m = 23, k = 67, n = 53;
  const int64_t k_pad = detail::Int8KPad(k);
  Rng rng(43);
  std::vector<uint8_t> a;
  std::vector<int8_t> b;
  FillInt8Operands(m, k, k_pad, n, rng, &a, &b);
  std::vector<int8_t> bp(detail::Int8PackedBCount(k, n));
  detail::Int8PackB(b.data(), k, n, bp.data());

  std::vector<int32_t> whole(m * n);
  detail::Int8GemmPackedB(a.data(), k_pad, bp.data(), whole.data(), m,
                          k_pad, n);
  for (int64_t split : {1, 4, 7, 22}) {
    std::vector<int32_t> parts(m * n, -1);
    detail::Int8GemmPackedB(a.data(), k_pad, bp.data(), parts.data(),
                            split, k_pad, n);
    detail::Int8GemmPackedB(a.data() + split * k_pad, k_pad, bp.data(),
                            parts.data() + split * n, m - split, k_pad,
                            n);
    EXPECT_EQ(std::memcmp(whole.data(), parts.data(),
                          whole.size() * sizeof(int32_t)),
              0)
        << "split at row " << split;
  }
}

// --- Freeze-time plan rewrite ----------------------------------------

TEST(QuantTest, QuantizePlanRewritesGemmOpsWithPayloads) {
  DhgcnConfig config =
      DhgcnConfig::Tiny(SkeletonLayoutType::kNtu25, /*num_classes=*/3);
  DhgcnModel model(config);
  model.SetTraining(false);
  Rng rng(44);
  std::vector<Tensor> inputs;
  inputs.push_back(Tensor::RandomNormal({2, 3, 8, 25}, rng));
  inputs.push_back(Tensor::RandomNormal({2, 3, 8, 25}, rng));
  QuantCalibration calib =
      CalibrateOnInputs(model, inputs).MoveValue();
  EXPECT_FALSE(calib.slot_absmax.empty());

  ExecutionPlan plan =
      BuildInt8InferencePlan(model, inputs[0].shape(), calib)
          .MoveValue();
  ASSERT_TRUE(plan.resolved);

  int64_t conv_int8 = 0, linear_int8 = 0, fp32_gemm = 0;
  for (const PlanOp& op : plan.ops) {
    switch (op.kind) {
      case PlanOpKind::kConv2dInt8Folded:
        ++conv_int8;
        break;
      case PlanOpKind::kLinearInt8:
        ++linear_int8;
        break;
      case PlanOpKind::kConv2d:
      case PlanOpKind::kConv2dFolded:
      case PlanOpKind::kLinear:
      case PlanOpKind::kLinearFolded:
        ++fp32_gemm;
        break;
      default:
        break;
    }
    if (op.kind == PlanOpKind::kConv2dInt8Folded ||
        op.kind == PlanOpKind::kLinearInt8) {
      ASSERT_NE(op.quant, nullptr);
      EXPECT_GT(op.quant->n, 0);
      EXPECT_GT(op.quant->act_scale, 0.0f);
      EXPECT_EQ(static_cast<int64_t>(op.quant->scale.size()),
                op.quant->n);
      EXPECT_EQ(op.quant->k_pad, detail::Int8KPad(op.quant->k));
    }
  }
  // Every GEMM-backed op in the Tiny model calibrates cleanly, so the
  // rewrite must catch all of them — convs and the classifier head.
  EXPECT_GT(conv_int8, 0);
  EXPECT_GT(linear_int8, 0);
  EXPECT_EQ(fp32_gemm, 0);

  // The rewritten plan replays to sane logits of the right shape.
  PlanRunner runner(std::move(plan));
  Tensor logits = runner.Run(inputs[0]);
  ASSERT_EQ(logits.shape(), (Shape{2, 3}));
  for (int64_t i = 0; i < logits.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(logits.flat(i)));
  }
}

TEST(QuantTest, QuantizePlanFailsWithEmptyCalibration) {
  DhgcnConfig config =
      DhgcnConfig::Tiny(SkeletonLayoutType::kNtu25, /*num_classes=*/3);
  DhgcnModel model(config);
  model.SetTraining(false);
  QuantCalibration empty;
  auto plan = BuildInt8InferencePlan(model, {2, 3, 8, 25}, empty);
  EXPECT_FALSE(plan.ok());
}

// --- Acceptance budget 1: top-1 within 1% of fp32 --------------------

TEST(QuantTest, Int8EvalTop1WithinOnePercentOfFp32) {
  SyntheticDataConfig data_config = NtuLikeConfig(3, 16, 12, 3);
  SkeletonDataset dataset =
      SkeletonDataset::Generate(data_config).MoveValue();
  DatasetSplit split = MakeSplit(dataset, SplitProtocol::kCrossSubject);
  DhgcnConfig config =
      DhgcnConfig::Tiny(SkeletonLayoutType::kNtu25, /*num_classes=*/3);
  auto model = DhgcnModel::Make(config).MoveValue();
  TrainOptions train_options;
  train_options.epochs = 10;
  train_options.initial_lr = 0.05f;
  train_options.lr_milestones = {6, 8};
  EvalMetrics trained = TrainAndEvaluateStream(
      *model, dataset, split, InputStream::kJoint, train_options,
      /*batch_size=*/8, /*seed=*/5);
  ASSERT_GT(trained.count, 0);

  DataLoader eval_loader(&dataset, split.test, 8, InputStream::kJoint,
                         /*shuffle=*/false);
  DataLoader calib_loader(&dataset, split.train, 8, InputStream::kJoint,
                          /*shuffle=*/false);

  EvalOptions fp32_options;
  fp32_options.plan = PlanMode::kFused;
  EvalMetrics fp32 = Evaluate(*model, eval_loader, fp32_options);

  EvalOptions int8_options;
  int8_options.plan = PlanMode::kFused;
  int8_options.precision = Precision::kInt8;
  int8_options.calibration_loader = &calib_loader;
  EvalMetrics int8 = Evaluate(*model, eval_loader, int8_options);

  EXPECT_EQ(int8.count, fp32.count);
  // The paper-level acceptance budget: quantization costs at most one
  // point of top-1. (On this suite it costs zero — the assert leaves
  // headroom for exactly the budget, nothing more.)
  EXPECT_GE(int8.top1, fp32.top1 - 0.01)
      << "fp32 top1=" << fp32.top1 << " int8 top1=" << int8.top1;
  EXPECT_TRUE(std::isfinite(int8.loss));
}

// --- Acceptance budget 2: ≤10 owning allocs per int8 replay ----------

TEST(QuantTest, Int8PlanReplayStaysWithinAllocBudget) {
  constexpr uint64_t kStepBudget = 10;
  DhgcnConfig config =
      DhgcnConfig::Tiny(SkeletonLayoutType::kKinetics18,
                        /*num_classes=*/4);
  DhgcnModel model(config);
  model.SetTraining(false);
  Rng rng(45);
  Tensor x = Tensor::RandomNormal({2, 3, 8, 18}, rng);

  QuantCalibration calib =
      CalibrateOnInputs(model, {x.Clone()}).MoveValue();
  PlanRunner runner(
      BuildInt8InferencePlan(model, x.shape(), calib).MoveValue());

  for (int step = 0; step < 5; ++step) {
    AllocStatsGuard guard;
    Tensor logits = runner.Run(x);
    ASSERT_EQ(logits.shape(), (Shape{2, 4}));
    if (step >= 2) {
      EXPECT_LE(guard.allocations(), kStepBudget)
          << "step " << step << " allocated " << guard.allocations()
          << " owning tensors (" << guard.bytes() << " bytes)";
    }
  }
}

}  // namespace
}  // namespace dhgcn
