#include "tensor/linalg.h"

#include "gtest/gtest.h"

#include "base/rng.h"
#include "tensor/tensor_ops.h"

namespace dhgcn {
namespace {

// Naive triple-loop reference used to validate the optimized kernels.
Tensor NaiveMatMul(const Tensor& a, const Tensor& b) {
  int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a.at(i, p)) * b.at(p, j);
      }
      out.at(i, j) = static_cast<float>(acc);
    }
  }
  return out;
}

TEST(MatMulTest, SmallKnownValues) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(MatMulTest, IdentityIsNeutral) {
  Rng rng(20);
  Tensor a = Tensor::RandomNormal({5, 5}, rng);
  EXPECT_TRUE(AllClose(MatMul(a, Tensor::Eye(5)), a, 1e-5f, 1e-6f));
  EXPECT_TRUE(AllClose(MatMul(Tensor::Eye(5), a), a, 1e-5f, 1e-6f));
}

TEST(MatMulTest, MatchesNaiveOnRandom) {
  Rng rng(21);
  Tensor a = Tensor::RandomNormal({7, 11}, rng);
  Tensor b = Tensor::RandomNormal({11, 5}, rng);
  EXPECT_TRUE(AllClose(MatMul(a, b), NaiveMatMul(a, b), 1e-4f, 1e-5f));
}

TEST(MatMulTest, SkipsZerosCorrectly) {
  // The kernel short-circuits zero entries of A; results must still match.
  Rng rng(22);
  Tensor a = Tensor::RandomNormal({6, 6}, rng);
  for (int64_t i = 0; i < a.numel(); i += 2) a.flat(i) = 0.0f;
  Tensor b = Tensor::RandomNormal({6, 4}, rng);
  EXPECT_TRUE(AllClose(MatMul(a, b), NaiveMatMul(a, b), 1e-4f, 1e-5f));
}

TEST(MatMulDeathTest, InnerDimensionMismatch) {
  Tensor a({2, 3});
  Tensor b({4, 2});
  EXPECT_DEATH(MatMul(a, b), "DHGCN_CHECK");
}

TEST(MatMulTransposedTest, TransposedAMatchesExplicit) {
  Rng rng(23);
  Tensor a = Tensor::RandomNormal({9, 4}, rng);  // (K, M)
  Tensor b = Tensor::RandomNormal({9, 6}, rng);  // (K, N)
  Tensor expected = MatMul(Transpose2D(a), b);
  EXPECT_TRUE(AllClose(MatMulTransposedA(a, b), expected, 1e-4f, 1e-5f));
}

TEST(MatMulTransposedTest, TransposedBMatchesExplicit) {
  Rng rng(24);
  Tensor a = Tensor::RandomNormal({4, 9}, rng);  // (M, K)
  Tensor b = Tensor::RandomNormal({6, 9}, rng);  // (N, K)
  Tensor expected = MatMul(a, Transpose2D(b));
  EXPECT_TRUE(AllClose(MatMulTransposedB(a, b), expected, 1e-4f, 1e-5f));
}

TEST(BatchedMatMulTest, PerBatchMatrices) {
  Rng rng(25);
  Tensor a = Tensor::RandomNormal({3, 4, 5}, rng);
  Tensor b = Tensor::RandomNormal({3, 5, 2}, rng);
  Tensor c = BatchedMatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{3, 4, 2}));
  for (int64_t batch = 0; batch < 3; ++batch) {
    Tensor ab = Slice(a, 0, batch, 1).Reshape({4, 5});
    Tensor bb = Slice(b, 0, batch, 1).Reshape({5, 2});
    Tensor cb = Slice(c, 0, batch, 1).Reshape({4, 2});
    EXPECT_TRUE(AllClose(cb, MatMul(ab, bb), 1e-4f, 1e-5f));
  }
}

TEST(BatchedMatMulTest, BroadcastSecondOperand) {
  Rng rng(26);
  Tensor a = Tensor::RandomNormal({3, 4, 5}, rng);
  Tensor b = Tensor::RandomNormal({5, 2}, rng);
  Tensor c = BatchedMatMul(a, b);
  for (int64_t batch = 0; batch < 3; ++batch) {
    Tensor ab = Slice(a, 0, batch, 1).Reshape({4, 5});
    Tensor cb = Slice(c, 0, batch, 1).Reshape({4, 2});
    EXPECT_TRUE(AllClose(cb, MatMul(ab, b), 1e-4f, 1e-5f));
  }
}

TEST(MatMulAccumulateTest, AddsIntoExisting) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2});
  Tensor b = Tensor::FromVector({2, 1}, {3, 4});
  Tensor out = Tensor::Full({1, 1}, 100.0f);
  MatMulAccumulate(a, b, out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 111.0f);
}

TEST(MatMulPropertyTest, Associativity) {
  Rng rng(27);
  Tensor a = Tensor::RandomNormal({3, 4}, rng);
  Tensor b = Tensor::RandomNormal({4, 5}, rng);
  Tensor c = Tensor::RandomNormal({5, 2}, rng);
  Tensor left = MatMul(MatMul(a, b), c);
  Tensor right = MatMul(a, MatMul(b, c));
  EXPECT_TRUE(AllClose(left, right, 1e-3f, 1e-4f));
}

TEST(MatMulPropertyTest, DistributesOverAddition) {
  Rng rng(28);
  Tensor a = Tensor::RandomNormal({3, 4}, rng);
  Tensor b1 = Tensor::RandomNormal({4, 5}, rng);
  Tensor b2 = Tensor::RandomNormal({4, 5}, rng);
  Tensor lhs = MatMul(a, Add(b1, b2));
  Tensor rhs = Add(MatMul(a, b1), MatMul(a, b2));
  EXPECT_TRUE(AllClose(lhs, rhs, 1e-3f, 1e-4f));
}

}  // namespace
}  // namespace dhgcn
