#include <cmath>

#include "gtest/gtest.h"

#include "base/rng.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dropout.h"
#include "nn/initializer.h"
#include "nn/linear.h"
#include "nn/pooling.h"
#include "nn/relu.h"
#include "nn/sequential.h"
#include "tensor/tensor_ops.h"

namespace dhgcn {
namespace {

// --- Initializers -------------------------------------------------------------

TEST(InitializerTest, KaimingUniformBounds) {
  Rng rng(1);
  Tensor w({64, 16});
  KaimingUniform(w, 16, rng);
  float bound = std::sqrt(6.0f / 16.0f);
  for (int64_t i = 0; i < w.numel(); ++i) {
    EXPECT_GE(w.flat(i), -bound);
    EXPECT_LE(w.flat(i), bound);
  }
  // Not all zero.
  EXPECT_GT(Norm2(w), 0.1f);
}

TEST(InitializerTest, KaimingNormalVariance) {
  Rng rng(2);
  Tensor w({200, 50});
  KaimingNormal(w, 50, rng);
  double var = 0.0;
  for (int64_t i = 0; i < w.numel(); ++i) {
    var += static_cast<double>(w.flat(i)) * w.flat(i);
  }
  var /= static_cast<double>(w.numel());
  EXPECT_NEAR(var, 2.0 / 50.0, 0.01);
}

TEST(InitializerTest, XavierAndBiasBounds) {
  Rng rng(3);
  Tensor w({10, 20});
  XavierUniform(w, 20, 10, rng);
  float bound = std::sqrt(6.0f / 30.0f);
  EXPECT_LE(MaxAll(Abs(w)), bound);
  Tensor b({10});
  BiasUniform(b, 16, rng);
  EXPECT_LE(MaxAll(Abs(b)), 0.25f);
}

// --- Linear -------------------------------------------------------------------

TEST(LinearTest, ForwardMatchesManual) {
  Rng rng(4);
  Linear linear(3, 2, rng);
  linear.weight() = Tensor::FromVector({2, 3}, {1, 0, -1, 2, 1, 0});
  linear.bias() = Tensor::FromList({0.5f, -0.5f});
  Tensor x = Tensor::FromVector({1, 3}, {1, 2, 3});
  Tensor y = linear.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0), 1 * 1 + 2 * 0 + 3 * -1 + 0.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 1 * 2 + 2 * 1 + 3 * 0 - 0.5f);
}

TEST(LinearTest, HandlesLeadingDims) {
  Rng rng(5);
  Linear linear(4, 6, rng);
  Tensor x = Tensor::RandomNormal({2, 3, 4}, rng);
  Tensor y = linear.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 3, 6}));
}

TEST(LinearTest, NoBiasOption) {
  Rng rng(6);
  Linear linear(3, 2, rng, /*has_bias=*/false);
  EXPECT_EQ(linear.Params().size(), 1u);
  Tensor zero({1, 3});
  Tensor y = linear.Forward(zero);
  EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 0.0f);
}

TEST(LinearTest, ParameterCount) {
  Rng rng(7);
  Linear linear(8, 5, rng);
  EXPECT_EQ(linear.ParameterCount(), 8 * 5 + 5);
}

TEST(LinearTest, ZeroGradClears) {
  Rng rng(8);
  Linear linear(2, 2, rng);
  Tensor x = Tensor::Ones({3, 2});
  linear.Forward(x);
  linear.Backward(Tensor::Ones({3, 2}));
  bool any_nonzero = false;
  for (ParamRef& p : linear.Params()) {
    any_nonzero = any_nonzero || Norm2(*p.grad) > 0.0f;
  }
  EXPECT_TRUE(any_nonzero);
  linear.ZeroGrad();
  for (ParamRef& p : linear.Params()) EXPECT_FLOAT_EQ(Norm2(*p.grad), 0.0f);
}

// --- Conv2d -------------------------------------------------------------------

TEST(Conv2dTest, OutputDimFormula) {
  EXPECT_EQ(Conv2d::OutputDim(32, 3, 1, 1, 1), 32);   // same padding
  EXPECT_EQ(Conv2d::OutputDim(32, 3, 2, 1, 1), 16);   // stride 2
  EXPECT_EQ(Conv2d::OutputDim(32, 3, 1, 2, 2), 32);   // dilation 2, pad 2
  EXPECT_EQ(Conv2d::OutputDim(10, 1, 1, 0, 1), 10);   // 1x1
  EXPECT_EQ(Conv2d::OutputDim(7, 3, 2, 1, 1), 4);
}

TEST(Conv2dTest, OneByOneIsChannelMix) {
  Rng rng(9);
  Conv2dOptions options;  // 1x1
  Conv2d conv(2, 1, options, rng);
  // Set weight: out = 2*c0 + 3*c1 + bias 1.
  std::vector<ParamRef> params = conv.Params();
  params[0].value->flat(0) = 2.0f;
  params[0].value->flat(1) = 3.0f;
  params[1].value->flat(0) = 1.0f;
  Tensor x({1, 2, 2, 2});
  x.Fill(1.0f);
  x.at(0, 1, 0, 0) = 5.0f;
  Tensor y = conv.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 2 * 1 + 3 * 5 + 1);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 2 + 3 + 1);
}

TEST(Conv2dTest, TemporalKernelManualValue) {
  Rng rng(10);
  Conv2dOptions options;
  options.kernel_h = 3;
  options.pad_h = 1;
  options.has_bias = false;
  Conv2d conv(1, 1, options, rng);
  // Moving-average kernel [1, 1, 1]^T / 1.
  conv.Params()[0].value->Fill(1.0f);
  Tensor x = Tensor::Arange(5).Reshape({1, 1, 5, 1});
  Tensor y = conv.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 5, 1}));
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 0.0f + 0.0f + 1.0f);  // zero padded
  EXPECT_FLOAT_EQ(y.at(0, 0, 2, 0), 1.0f + 2.0f + 3.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 4, 0), 3.0f + 4.0f + 0.0f);
}

TEST(Conv2dTest, DilationSkipsFrames) {
  Rng rng(11);
  Conv2dOptions options;
  options.kernel_h = 3;
  options.pad_h = 2;
  options.dilation_h = 2;
  options.has_bias = false;
  Conv2d conv(1, 1, options, rng);
  conv.Params()[0].value->Fill(1.0f);
  Tensor x = Tensor::Arange(5).Reshape({1, 1, 5, 1});
  Tensor y = conv.Forward(x);
  // Center position 2 sees frames 0, 2, 4.
  EXPECT_FLOAT_EQ(y.at(0, 0, 2, 0), 0.0f + 2.0f + 4.0f);
}

TEST(Conv2dTest, StrideHalvesTime) {
  Rng rng(12);
  Conv2dOptions options;
  options.kernel_h = 3;
  options.pad_h = 1;
  options.stride_h = 2;
  Conv2d conv(3, 4, options, rng);
  Tensor x = Tensor::RandomNormal({2, 3, 16, 5}, rng);
  Tensor y = conv.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{2, 4, 8, 5}));
}

struct ConvShapeCase {
  int64_t t;
  int64_t kernel;
  int64_t stride;
  int64_t pad;
  int64_t dilation;
  int64_t expected;
};

class ConvShapeParamTest : public ::testing::TestWithParam<ConvShapeCase> {};

TEST_P(ConvShapeParamTest, ForwardShapeMatchesFormula) {
  const ConvShapeCase& c = GetParam();
  Rng rng(13);
  Conv2dOptions options;
  options.kernel_h = c.kernel;
  options.stride_h = c.stride;
  options.pad_h = c.pad;
  options.dilation_h = c.dilation;
  Conv2d conv(2, 3, options, rng);
  Tensor x = Tensor::RandomNormal({1, 2, c.t, 4}, rng);
  Tensor y = conv.Forward(x);
  EXPECT_EQ(y.dim(2), c.expected);
  // Backward must return the input shape regardless of geometry.
  Tensor g = conv.Backward(Tensor::Ones(y.shape()));
  EXPECT_EQ(g.shape(), x.shape());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvShapeParamTest,
    ::testing::Values(ConvShapeCase{16, 3, 1, 1, 1, 16},
                      ConvShapeCase{16, 3, 2, 1, 1, 8},
                      ConvShapeCase{16, 5, 1, 2, 1, 16},
                      ConvShapeCase{16, 3, 1, 2, 2, 16},
                      ConvShapeCase{9, 3, 2, 1, 1, 5},
                      ConvShapeCase{16, 1, 1, 0, 1, 16}));

// --- BatchNorm ------------------------------------------------------------------

TEST(BatchNormTest, TrainingNormalizesBatch) {
  BatchNorm2d bn(2);
  bn.SetTraining(true);
  Rng rng(14);
  Tensor x = Tensor::RandomNormal({4, 2, 3, 3}, rng, 5.0f, 2.0f);
  Tensor y = bn.Forward(x);
  // Per-channel mean ~0 and var ~1 after normalization.
  for (int64_t c = 0; c < 2; ++c) {
    double sum = 0.0, sum_sq = 0.0;
    int64_t count = 0;
    for (int64_t n = 0; n < 4; ++n) {
      for (int64_t h = 0; h < 3; ++h) {
        for (int64_t w = 0; w < 3; ++w) {
          double v = y.at(n, c, h, w);
          sum += v;
          sum_sq += v * v;
          ++count;
        }
      }
    }
    double mean = sum / static_cast<double>(count);
    double var = sum_sq / static_cast<double>(count) - mean * mean;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, GammaBetaApply) {
  BatchNorm2d bn(1);
  bn.gamma().Fill(3.0f);
  bn.beta().Fill(-1.0f);
  Rng rng(15);
  Tensor x = Tensor::RandomNormal({8, 1, 2, 2}, rng);
  Tensor y = bn.Forward(x);
  double mean = 0.0;
  for (int64_t i = 0; i < y.numel(); ++i) mean += y.flat(i);
  mean /= static_cast<double>(y.numel());
  EXPECT_NEAR(mean, -1.0, 1e-4);  // beta shifts the normalized mean
}

TEST(BatchNormTest, EvalUsesRunningStats) {
  BatchNorm2d bn(1, /*eps=*/1e-5f, /*momentum=*/1.0f);  // adopt last batch
  Rng rng(16);
  Tensor x = Tensor::RandomNormal({16, 1, 4, 4}, rng, 2.0f, 3.0f);
  bn.Forward(x);  // training: records stats
  bn.SetTraining(false);
  Tensor y = bn.Forward(x);
  // With momentum 1 the running stats equal the batch stats, so eval
  // output is ~normalized too (up to the biased/unbiased var correction).
  double mean = 0.0;
  for (int64_t i = 0; i < y.numel(); ++i) mean += y.flat(i);
  mean /= static_cast<double>(y.numel());
  EXPECT_NEAR(mean, 0.0, 1e-3);
}

TEST(BatchNormTest, Supports2dInput) {
  BatchNorm2d bn(4);
  Rng rng(17);
  Tensor x = Tensor::RandomNormal({8, 4}, rng, 1.0f, 2.0f);
  Tensor y = bn.Forward(x);
  EXPECT_EQ(y.shape(), x.shape());
  for (int64_t c = 0; c < 4; ++c) {
    double sum = 0.0;
    for (int64_t n = 0; n < 8; ++n) sum += y.at(n, c);
    EXPECT_NEAR(sum / 8.0, 0.0, 1e-4);
  }
}

// --- ReLU / Dropout ------------------------------------------------------------

TEST(ReluTest, ClampsNegatives) {
  ReLU relu;
  Tensor x = Tensor::FromList({-2, -0.5f, 0, 1, 3});
  Tensor y = relu.Forward(x);
  EXPECT_FLOAT_EQ(y.flat(0), 0.0f);
  EXPECT_FLOAT_EQ(y.flat(2), 0.0f);
  EXPECT_FLOAT_EQ(y.flat(4), 3.0f);
}

TEST(ReluTest, BackwardMasks) {
  ReLU relu;
  Tensor x = Tensor::FromList({-1, 2});
  relu.Forward(x);
  Tensor g = relu.Backward(Tensor::FromList({10, 10}));
  EXPECT_FLOAT_EQ(g.flat(0), 0.0f);
  EXPECT_FLOAT_EQ(g.flat(1), 10.0f);
}

TEST(DropoutTest, EvalIsIdentity) {
  Rng rng(18);
  Dropout dropout(0.5f, rng);
  dropout.SetTraining(false);
  Tensor x = Tensor::Arange(10);
  EXPECT_TRUE(AllClose(dropout.Forward(x), x));
}

TEST(DropoutTest, TrainingZeroesAboutPFraction) {
  Rng rng(19);
  Dropout dropout(0.3f, rng);
  dropout.SetTraining(true);
  Tensor x = Tensor::Ones({10000});
  Tensor y = dropout.Forward(x);
  int64_t zeros = 0;
  float scale = 1.0f / 0.7f;
  for (int64_t i = 0; i < y.numel(); ++i) {
    if (y.flat(i) == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(y.flat(i), scale, 1e-5f);
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(y.numel()),
              0.3, 0.03);
}

TEST(DropoutTest, BackwardUsesSameMask) {
  Rng rng(20);
  Dropout dropout(0.5f, rng);
  Tensor x = Tensor::Ones({1000});
  Tensor y = dropout.Forward(x);
  Tensor g = dropout.Backward(Tensor::Ones({1000}));
  for (int64_t i = 0; i < y.numel(); ++i) {
    EXPECT_FLOAT_EQ(g.flat(i), y.flat(i));  // identical masking and scale
  }
}

TEST(DropoutTest, ZeroProbabilityIsIdentityInTraining) {
  Rng rng(21);
  Dropout dropout(0.0f, rng);
  Tensor x = Tensor::Arange(5);
  EXPECT_TRUE(AllClose(dropout.Forward(x), x));
}

// --- Pooling ---------------------------------------------------------------------

TEST(GlobalAvgPoolTest, AveragesSpatial) {
  GlobalAvgPool2d pool;
  Tensor x({1, 2, 2, 2});
  x.at(0, 0, 0, 0) = 1;
  x.at(0, 0, 0, 1) = 2;
  x.at(0, 0, 1, 0) = 3;
  x.at(0, 0, 1, 1) = 4;
  x.at(0, 1, 0, 0) = 10;
  Tensor y = pool.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0), 2.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 2.5f);
}

TEST(GlobalAvgPoolTest, BackwardSpreadsEvenly) {
  GlobalAvgPool2d pool;
  Tensor x = Tensor::Ones({1, 1, 2, 2});
  pool.Forward(x);
  Tensor g = pool.Backward(Tensor::FromVector({1, 1}, {8.0f}));
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(g.flat(i), 2.0f);
}

TEST(TemporalAvgPoolTest, ForwardValues) {
  TemporalAvgPool pool(2, 2);
  Tensor x = Tensor::Arange(8).Reshape({1, 1, 8, 1});
  Tensor y = pool.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 4, 1}));
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 0.5f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 3, 0), 6.5f);
}

// --- Sequential ------------------------------------------------------------------

TEST(SequentialTest, ChainsLayers) {
  Rng rng(22);
  Sequential seq;
  seq.Emplace<Linear>(3, 4, rng);
  seq.Emplace<ReLU>();
  seq.Emplace<Linear>(4, 2, rng);
  Tensor x = Tensor::RandomNormal({5, 3}, rng);
  Tensor y = seq.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{5, 2}));
  Tensor g = seq.Backward(Tensor::Ones({5, 2}));
  EXPECT_EQ(g.shape(), x.shape());
}

TEST(SequentialTest, ParamsAreNamespaced) {
  Rng rng(23);
  Sequential seq;
  seq.Emplace<Linear>(2, 2, rng);
  seq.Emplace<Linear>(2, 2, rng);
  std::vector<ParamRef> params = seq.Params();
  ASSERT_EQ(params.size(), 4u);
  EXPECT_NE(params[0].name.find("0."), std::string::npos);
  EXPECT_NE(params[2].name.find("1."), std::string::npos);
}

TEST(SequentialTest, SetTrainingPropagates) {
  Rng rng(24);
  Sequential seq;
  Dropout* dropout = seq.Emplace<Dropout>(0.5f, rng);
  seq.SetTraining(false);
  EXPECT_FALSE(dropout->training());
  seq.SetTraining(true);
  EXPECT_TRUE(dropout->training());
}

}  // namespace
}  // namespace dhgcn
