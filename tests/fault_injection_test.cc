#include "base/fault_injection.h"

#include <cstdio>
#include <fstream>

#include "gtest/gtest.h"

#include "base/rng.h"
#include "data/dataloader.h"
#include "data/synthetic_generator.h"
#include "io/serialization.h"
#include "nn/linear.h"
#include "tensor/tensor_ops.h"

namespace dhgcn {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Every test resets the global registry so armed sites cannot leak
// between tests (the registry is process-global by design).
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjection::Get().Reset(); }
  void TearDown() override { FaultInjection::Get().Reset(); }
};

TEST_F(FaultInjectionTest, FiresOnceAtNthPass) {
  FaultInjection& faults = FaultInjection::Get();
  faults.Arm(FaultSite::kBatchNaN, /*nth=*/3);
  EXPECT_FALSE(faults.ShouldFire(FaultSite::kBatchNaN));
  EXPECT_FALSE(faults.ShouldFire(FaultSite::kBatchNaN));
  EXPECT_TRUE(faults.ShouldFire(FaultSite::kBatchNaN));
  // One-shot: disarmed after firing.
  EXPECT_FALSE(faults.ShouldFire(FaultSite::kBatchNaN));
  EXPECT_EQ(faults.fire_count(FaultSite::kBatchNaN), 1);
  EXPECT_FALSE(faults.any_armed());
}

TEST_F(FaultInjectionTest, DisarmedSitesNeverFire) {
  FaultInjection& faults = FaultInjection::Get();
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(faults.ShouldFire(FaultSite::kGradientNaN));
  }
  faults.Arm(FaultSite::kGradientNaN, 1);
  faults.Disarm(FaultSite::kGradientNaN);
  EXPECT_FALSE(faults.ShouldFire(FaultSite::kGradientNaN));
  EXPECT_EQ(faults.fire_count(FaultSite::kGradientNaN), 0);
}

TEST_F(FaultInjectionTest, PassCountingStartsAtArm) {
  FaultInjection& faults = FaultInjection::Get();
  faults.Arm(FaultSite::kFileWrite, 2);
  EXPECT_FALSE(faults.ShouldFire(FaultSite::kFileWrite));
  // Re-arming restarts the count.
  faults.Arm(FaultSite::kFileWrite, 2);
  EXPECT_FALSE(faults.ShouldFire(FaultSite::kFileWrite));
  EXPECT_TRUE(faults.ShouldFire(FaultSite::kFileWrite));
}

TEST_F(FaultInjectionTest, ArmFromSpecParsesSitesAndPayloads) {
  FaultInjection& faults = FaultInjection::Get();
  ASSERT_TRUE(
      faults.ArmFromSpec("grad-nan:2,truncate:1:17,batch-nan:1").ok());
  EXPECT_TRUE(faults.any_armed());
  EXPECT_EQ(faults.payload(FaultSite::kCheckpointTruncate), 17);
  EXPECT_FALSE(faults.ShouldFire(FaultSite::kGradientNaN));
  EXPECT_TRUE(faults.ShouldFire(FaultSite::kGradientNaN));
  EXPECT_TRUE(faults.ShouldFire(FaultSite::kBatchNaN));
  EXPECT_TRUE(faults.ShouldFire(FaultSite::kCheckpointTruncate));
}

TEST_F(FaultInjectionTest, ArmFromSpecRejectsGarbage) {
  FaultInjection& faults = FaultInjection::Get();
  EXPECT_EQ(faults.ArmFromSpec("frobnicate:1").code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(faults.ArmFromSpec("grad-nan").ok());       // missing nth
  EXPECT_FALSE(faults.ArmFromSpec("grad-nan:0").ok());     // nth < 1
  EXPECT_FALSE(faults.ArmFromSpec("grad-nan:1:2:3").ok()); // too many fields
}

TEST_F(FaultInjectionTest, ServingSitesParseAndRoundTripNames) {
  // Registry coverage for the serving sites added with src/serve.
  FaultInjection& faults = FaultInjection::Get();
  ASSERT_TRUE(faults
                  .ArmFromSpec("queue-full:1,worker-stall:2:40,"
                               "deadline-miss:3,poison-input:4")
                  .ok());
  EXPECT_TRUE(faults.any_armed());
  EXPECT_EQ(faults.payload(FaultSite::kServeWorkerStall), 40);
  EXPECT_EQ(FaultSiteName(FaultSite::kServeQueueFull), "queue-full");
  EXPECT_EQ(FaultSiteName(FaultSite::kServeWorkerStall), "worker-stall");
  EXPECT_EQ(FaultSiteName(FaultSite::kServeDeadlineMiss),
            "deadline-miss");
  EXPECT_EQ(FaultSiteName(FaultSite::kServePoisonInput), "poison-input");

  EXPECT_TRUE(faults.ShouldFire(FaultSite::kServeQueueFull));
  EXPECT_FALSE(faults.ShouldFire(FaultSite::kServeWorkerStall));
  EXPECT_TRUE(faults.ShouldFire(FaultSite::kServeWorkerStall));
  EXPECT_EQ(faults.fire_count(FaultSite::kServeQueueFull), 1);
  faults.Reset();
  EXPECT_FALSE(faults.any_armed());
  EXPECT_EQ(faults.fire_count(FaultSite::kServeQueueFull), 0);
}

TEST_F(FaultInjectionTest, EverySiteHasANameAndSpecCoverage) {
  // Guards against adding an enum value without wiring the name table
  // or the spec parser: every site must round-trip through both.
  FaultInjection& faults = FaultInjection::Get();
  for (int s = 0; s < static_cast<int>(FaultSite::kSiteCount); ++s) {
    FaultSite site = static_cast<FaultSite>(s);
    std::string name = FaultSiteName(site);
    EXPECT_NE(name, "?") << "site " << s << " has no name";
    ASSERT_TRUE(faults.ArmFromSpec(name + ":1").ok())
        << "site name " << name << " not accepted by ArmFromSpec";
    EXPECT_TRUE(faults.ShouldFire(site)) << name;
  }
}

TEST_F(FaultInjectionTest, WriteFailureLeavesPreviousCheckpointIntact) {
  Rng rng(1);
  Linear model(4, 4, rng);
  std::string path = TempPath("fi_write.ckpt");
  Checkpoint meta;
  meta.epoch = 1;
  ASSERT_TRUE(SaveCheckpoint(path, model, meta).ok());

  FaultInjection::Get().Arm(FaultSite::kFileWrite, 1);
  meta.epoch = 2;
  Status failed = SaveCheckpoint(path, model, meta);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kIOError);
  EXPECT_NE(failed.message().find("fault injection"), std::string::npos);

  // The atomic protocol means the old file is still complete and loadable.
  Linear target(4, 4, rng);
  Result<Checkpoint> loaded = LoadCheckpoint(path, target);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->epoch, 1);
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, TruncatedWriteIsDetectedAtLoad) {
  Rng rng(2);
  Linear model(4, 4, rng);
  std::string path = TempPath("fi_truncate.ckpt");
  // Drop 9 trailing bytes but let the rename land: a torn-but-renamed
  // file, the worst case the CRC/EOF checks must catch.
  FaultInjection::Get().Arm(FaultSite::kCheckpointTruncate, 1,
                            /*payload=*/9);
  Checkpoint meta;
  ASSERT_TRUE(SaveCheckpoint(path, model, meta).ok());

  Linear target(4, 4, rng);
  Result<Checkpoint> loaded = LoadCheckpoint(path, target);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  std::remove(path.c_str());
}

TEST_F(FaultInjectionTest, BatchPoisonFillsBatchWithNaN) {
  SkeletonDataset dataset =
      SkeletonDataset::Generate(NtuLikeConfig(2, 4, 6, 7)).MoveValue();
  std::vector<int64_t> indices(static_cast<size_t>(dataset.size()));
  for (size_t i = 0; i < indices.size(); ++i) {
    indices[i] = static_cast<int64_t>(i);
  }
  DataLoader loader(&dataset, indices, 4, InputStream::kJoint,
                    /*shuffle=*/false);
  Batch clean = loader.GetBatch(0);
  EXPECT_FALSE(HasNonFinite(clean.x));

  FaultInjection::Get().Arm(FaultSite::kBatchNaN, 1);
  Batch poisoned = loader.GetBatch(0);
  EXPECT_TRUE(HasNonFinite(poisoned.x));
  // One-shot: the next batch is clean again.
  Batch after = loader.GetBatch(0);
  EXPECT_FALSE(HasNonFinite(after.x));
}

}  // namespace
}  // namespace dhgcn
