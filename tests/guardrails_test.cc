#include "train/guardrails.h"

#include <cmath>
#include <limits>

#include "gtest/gtest.h"

#include "base/fault_injection.h"
#include "base/rng.h"
#include "models/model_zoo.h"
#include "nn/linear.h"
#include "tensor/tensor_ops.h"
#include "train/summary.h"
#include "train/trainer.h"

namespace dhgcn {
namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();

class GuardrailsTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjection::Get().Reset(); }
  void TearDown() override { FaultInjection::Get().Reset(); }
};

TEST_F(GuardrailsTest, PolicyNamesRoundTrip) {
  for (GuardrailPolicy policy :
       {GuardrailPolicy::kSkipBatch, GuardrailPolicy::kHalveLr,
        GuardrailPolicy::kRollback, GuardrailPolicy::kAbort}) {
    Result<GuardrailPolicy> parsed =
        ParseGuardrailPolicy(GuardrailPolicyName(policy));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(ParseGuardrailPolicy("explode").ok());
}

TEST_F(GuardrailsTest, FindNonFiniteGradientNamesTheParameter) {
  Rng rng(1);
  Linear model(3, 2, rng);
  EXPECT_FALSE(FindNonFiniteGradient(model).has_value());
  model.Params()[0].grad->data()[1] = kNaN;
  std::optional<std::string> hit = FindNonFiniteGradient(model);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "weight");
}

// Satellite fix: a non-finite global norm used to scale NaN into every
// gradient; now the clip is skipped and gradients stay untouched.
TEST_F(GuardrailsTest, ClipGradientNormSkipsOnNonFiniteNorm) {
  Rng rng(2);
  Linear model(2, 2, rng);
  Tensor& grad = *model.Params()[0].grad;
  grad.Fill(5.0f);
  grad.data()[0] = kNaN;
  float norm = ClipGradientNorm(model, /*max_norm=*/1.0f);
  EXPECT_FALSE(std::isfinite(norm));
  // Finite entries must be exactly untouched, not scaled or NaN-ed.
  EXPECT_FLOAT_EQ(grad.data()[1], 5.0f);
  EXPECT_FLOAT_EQ(grad.data()[3], 5.0f);
}

TEST_F(GuardrailsTest, SpikeDetectorFlagsOutlierLoss) {
  Rng rng(3);
  Linear model(2, 2, rng);
  GuardrailOptions options;
  options.enabled = true;
  options.spike_factor = 2.0f;
  options.spike_min_history = 3;
  Guardrails guardrails(&model, options);
  Tensor logits = Tensor::FromVector({1, 2}, {0.1f, 0.2f});
  // Not armed until min_history clean losses are seen.
  EXPECT_FALSE(guardrails.CheckForward(logits, 10.0f).has_value());
  for (float loss : {1.0f, 1.1f, 0.9f}) guardrails.OnCleanStep(loss);
  EXPECT_FALSE(guardrails.CheckForward(logits, 1.5f).has_value());
  std::optional<std::string> anomaly = guardrails.CheckForward(logits, 10.0f);
  ASSERT_TRUE(anomaly.has_value());
  EXPECT_NE(anomaly->find("loss spike"), std::string::npos);
  // Non-finite loss and logits are anomalies regardless of history.
  EXPECT_TRUE(guardrails.CheckForward(logits, kNaN).has_value());
  Tensor bad_logits = Tensor::FromVector({1, 2}, {kNaN, 0.0f});
  EXPECT_TRUE(guardrails.CheckForward(bad_logits, 1.0f).has_value());
}

// --- End-to-end policies, driven by deterministic fault injection ---------------

struct TrainRig {
  SkeletonDataset dataset;
  DatasetSplit split;
  LayerPtr model;

  static TrainRig Make() {
    SyntheticDataConfig config = NtuLikeConfig(3, 10, 12, 99);
    config.sensor_noise = 0.005f;
    TrainRig rig{SkeletonDataset::Generate(config).MoveValue(), {}, {}};
    rig.split = rig.dataset.RandomSplit(0.3f, 1);
    ModelZooOptions zoo;
    zoo.scale.channels = {4};
    zoo.scale.strides = {1};
    zoo.scale.dropout = 0.0f;
    rig.model =
        CreateModel(ModelKind::kTcn, SkeletonLayoutType::kNtu25, 3, zoo);
    return rig;
  }

  DataLoader Loader() {
    return DataLoader(&dataset, split.train, 8, InputStream::kJoint,
                      /*shuffle=*/true, Rng(5));
  }

  TrainOptions Options(GuardrailPolicy policy) {
    TrainOptions options;
    options.epochs = 1;
    options.initial_lr = 0.1f;
    options.guardrails.enabled = true;
    options.guardrails.policy = policy;
    return options;
  }

  bool ParamsFinite() {
    for (ParamRef& p : model->Params()) {
      if (HasNonFinite(*p.value)) return false;
    }
    return true;
  }
};

TEST_F(GuardrailsTest, SkipPolicyDropsPoisonedBatchAndFinishes) {
  TrainRig rig = TrainRig::Make();
  DataLoader loader = rig.Loader();
  Trainer trainer(rig.model.get(), rig.Options(GuardrailPolicy::kSkipBatch));
  FaultInjection::Get().Arm(FaultSite::kGradientNaN, 2);
  Result<EpochStats> stats = trainer.TrainEpoch(loader, 0);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->guardrails.anomalies, 1);
  EXPECT_EQ(stats->guardrails.skipped_batches, 1);
  EXPECT_EQ(stats->guardrails.lr_halvings, 0);
  EXPECT_TRUE(rig.ParamsFinite());
  EXPECT_EQ(FaultInjection::Get().fire_count(FaultSite::kGradientNaN), 1);
}

TEST_F(GuardrailsTest, HalveLrPolicyHalvesUntilNextEpoch) {
  TrainRig rig = TrainRig::Make();
  DataLoader loader = rig.Loader();
  TrainOptions options = rig.Options(GuardrailPolicy::kHalveLr);
  options.epochs = 2;
  Trainer trainer(rig.model.get(), options);
  FaultInjection::Get().Arm(FaultSite::kGradientInf, 1);
  Result<EpochStats> first = trainer.TrainEpoch(loader, 0);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->guardrails.lr_halvings, 1);
  EXPECT_FLOAT_EQ(static_cast<float>(first->lr), 0.05f);
  // The next epoch re-applies the schedule LR.
  Result<EpochStats> second = trainer.TrainEpoch(loader, 1);
  ASSERT_TRUE(second.ok());
  EXPECT_FLOAT_EQ(static_cast<float>(second->lr), 0.1f);
  EXPECT_TRUE(rig.ParamsFinite());
}

TEST_F(GuardrailsTest, RollbackPolicyRestoresLastGoodSnapshot) {
  TrainRig rig = TrainRig::Make();
  DataLoader loader = rig.Loader();
  Trainer trainer(rig.model.get(), rig.Options(GuardrailPolicy::kRollback));
  FaultInjection::Get().Arm(FaultSite::kGradientNaN, 3);
  Result<EpochStats> stats = trainer.TrainEpoch(loader, 0);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->guardrails.rollbacks, 1);
  EXPECT_EQ(stats->guardrails.anomalies, 1);
  EXPECT_TRUE(rig.ParamsFinite());
}

TEST_F(GuardrailsTest, AbortPolicyReturnsDescriptiveStatus) {
  TrainRig rig = TrainRig::Make();
  DataLoader loader = rig.Loader();
  Trainer trainer(rig.model.get(), rig.Options(GuardrailPolicy::kAbort));
  FaultInjection::Get().Arm(FaultSite::kGradientNaN, 1);
  Result<std::vector<EpochStats>> history = trainer.Train(loader);
  ASSERT_FALSE(history.ok());
  EXPECT_EQ(history.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(history.status().message().find("non-finite gradient"),
            std::string::npos)
      << history.status().message();
}

TEST_F(GuardrailsTest, AnomalyBudgetAbortsEvenUnderSkipPolicy) {
  TrainRig rig = TrainRig::Make();
  DataLoader loader = rig.Loader();
  TrainOptions options = rig.Options(GuardrailPolicy::kSkipBatch);
  options.guardrails.max_anomalies = 2;
  Trainer trainer(rig.model.get(), options);
  FaultInjection::Get().ArmFromSpec("grad-nan:1,grad-inf:2").AbortIfNotOk();
  Result<std::vector<EpochStats>> history = trainer.Train(loader);
  ASSERT_FALSE(history.ok());
  EXPECT_EQ(history.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(history.status().message().find("anomaly budget"),
            std::string::npos)
      << history.status().message();
}

// A NaN input batch is sneaky: ReLU maps NaN to 0 in the forward pass, so
// the loss can come out finite and only the gradient sentinel fires — by
// which point batch-norm running statistics have already absorbed NaN.
// The guardrails must both catch the step AND restore the buffers.
TEST_F(GuardrailsTest, PoisonedBatchCaughtAndBuffersRestored) {
  TrainRig rig = TrainRig::Make();
  DataLoader loader = rig.Loader();
  Trainer trainer(rig.model.get(), rig.Options(GuardrailPolicy::kSkipBatch));
  FaultInjection::Get().Arm(FaultSite::kBatchNaN, 1);
  Result<EpochStats> stats = trainer.TrainEpoch(loader, 0);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->guardrails.anomalies, 1);
  EXPECT_TRUE(rig.ParamsFinite());
}

TEST_F(GuardrailsTest, DisabledGuardrailsReportZeroCounters) {
  TrainRig rig = TrainRig::Make();
  DataLoader loader = rig.Loader();
  TrainOptions options;
  options.epochs = 1;
  options.initial_lr = 0.1f;
  Trainer trainer(rig.model.get(), options);
  Result<EpochStats> stats = trainer.TrainEpoch(loader, 0);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->guardrails.anomalies, 0);
  EXPECT_EQ(trainer.guardrail_counters().anomalies, 0);
}

}  // namespace
}  // namespace dhgcn
