#include <set>

#include "gtest/gtest.h"

#include "data/dataloader.h"
#include "data/dataset.h"
#include "data/skeleton.h"
#include "data/synthetic_generator.h"
#include "data/transforms.h"
#include "tensor/tensor_ops.h"

namespace dhgcn {
namespace {

// --- Skeleton layouts -----------------------------------------------------------

class SkeletonLayoutParamTest
    : public ::testing::TestWithParam<SkeletonLayoutType> {};

TEST_P(SkeletonLayoutParamTest, StructureIsConsistent) {
  const SkeletonLayout& layout = GetSkeletonLayout(GetParam());
  EXPECT_GT(layout.num_joints, 0);
  ASSERT_EQ(static_cast<int64_t>(layout.parents.size()), layout.num_joints);
  ASSERT_EQ(static_cast<int64_t>(layout.joint_names.size()),
            layout.num_joints);
  EXPECT_EQ(layout.rest_pose.shape(), (Shape{layout.num_joints, 3}));
  EXPECT_FALSE(HasNonFinite(layout.rest_pose));
  // Root is its own parent; everyone else's parent is in range.
  EXPECT_EQ(layout.parents[static_cast<size_t>(layout.root)], layout.root);
  for (int64_t j = 0; j < layout.num_joints; ++j) {
    EXPECT_GE(layout.parents[static_cast<size_t>(j)], 0);
    EXPECT_LT(layout.parents[static_cast<size_t>(j)], layout.num_joints);
  }
  // A tree has V-1 bones.
  EXPECT_EQ(static_cast<int64_t>(layout.bones.size()),
            layout.num_joints - 1);
}

TEST_P(SkeletonLayoutParamTest, ParentChainsReachRoot) {
  const SkeletonLayout& layout = GetSkeletonLayout(GetParam());
  for (int64_t j = 0; j < layout.num_joints; ++j) {
    int64_t node = j;
    int64_t hops = 0;
    while (node != layout.root) {
      node = layout.parents[static_cast<size_t>(node)];
      ASSERT_LE(++hops, layout.num_joints) << "cycle at joint " << j;
    }
  }
}

TEST_P(SkeletonLayoutParamTest, TreeDistancesAreMetric) {
  const SkeletonLayout& layout = GetSkeletonLayout(GetParam());
  Tensor dist = TreeDistances(layout);
  int64_t v = layout.num_joints;
  for (int64_t i = 0; i < v; ++i) {
    EXPECT_FLOAT_EQ(dist.at(i, i), 0.0f);
    for (int64_t j = 0; j < v; ++j) {
      EXPECT_FLOAT_EQ(dist.at(i, j), dist.at(j, i));
      if (i != j) {
        EXPECT_GE(dist.at(i, j), 1.0f);
      }
    }
  }
  // Bone-connected joints are at distance exactly 1.
  for (const auto& [child, parent] : layout.bones) {
    EXPECT_FLOAT_EQ(dist.at(child, parent), 1.0f);
  }
}

TEST_P(SkeletonLayoutParamTest, SkeletonGraphMatchesBones) {
  const SkeletonLayout& layout = GetSkeletonLayout(GetParam());
  Graph graph = SkeletonGraph(layout);
  EXPECT_EQ(graph.num_vertices(), layout.num_joints);
  EXPECT_EQ(graph.edges().size(), layout.bones.size());
}

TEST_P(SkeletonLayoutParamTest, PartPartitionsCoverAllJoints) {
  const SkeletonLayout& layout = GetSkeletonLayout(GetParam());
  for (int64_t parts : {2, 4, 6}) {
    std::vector<std::vector<int64_t>> partition =
        PartPartition(layout, parts);
    ASSERT_EQ(static_cast<int64_t>(partition.size()), parts);
    std::set<int64_t> covered;
    for (const auto& part : partition) {
      EXPECT_FALSE(part.empty());
      for (int64_t j : part) {
        EXPECT_GE(j, 0);
        EXPECT_LT(j, layout.num_joints);
        covered.insert(j);
      }
    }
    EXPECT_EQ(static_cast<int64_t>(covered.size()), layout.num_joints)
        << parts << " parts";
  }
}

INSTANTIATE_TEST_SUITE_P(Layouts, SkeletonLayoutParamTest,
                         ::testing::Values(SkeletonLayoutType::kNtu25,
                                           SkeletonLayoutType::kKinetics18));

TEST(SkeletonLayoutTest, ExpectedJointCounts) {
  EXPECT_EQ(GetSkeletonLayout(SkeletonLayoutType::kNtu25).num_joints, 25);
  EXPECT_EQ(GetSkeletonLayout(SkeletonLayoutType::kKinetics18).num_joints,
            18);
}

// --- Synthetic generator -----------------------------------------------------------

TEST(SyntheticGeneratorTest, ConfigValidation) {
  SyntheticDataConfig config = NtuLikeConfig(5, 4, 16, 1);
  EXPECT_TRUE(SyntheticSkeletonGenerator::Make(config).ok());

  config.num_classes = 0;
  EXPECT_FALSE(SyntheticSkeletonGenerator::Make(config).ok());
  config = NtuLikeConfig(5, 4, 16, 1);
  config.num_frames = 1;
  EXPECT_FALSE(SyntheticSkeletonGenerator::Make(config).ok());
  config = NtuLikeConfig(5, 4, 16, 1);
  config.joint_dropout_prob = 1.5f;
  EXPECT_FALSE(SyntheticSkeletonGenerator::Make(config).ok());
  config = NtuLikeConfig(5, 4, 16, 1);
  config.propagation_alpha = 1.0f;
  EXPECT_FALSE(SyntheticSkeletonGenerator::Make(config).ok());
}

TEST(SyntheticGeneratorTest, SampleShapeAndAnnotations) {
  SyntheticSkeletonGenerator generator(NtuLikeConfig(3, 2, 20, 7));
  SkeletonSample sample = generator.GenerateSample(2, 1, 0, 3, 99);
  EXPECT_EQ(sample.data.shape(), (Shape{3, 20, 25}));
  EXPECT_EQ(sample.label, 2);
  EXPECT_EQ(sample.subject, 1);
  EXPECT_EQ(sample.camera, 0);
  EXPECT_EQ(sample.setup, 3);
  EXPECT_FALSE(HasNonFinite(sample.data));
}

TEST(SyntheticGeneratorTest, DeterministicForSameInstanceSeed) {
  SyntheticSkeletonGenerator generator(NtuLikeConfig(3, 2, 16, 7));
  SkeletonSample a = generator.GenerateSample(0, 0, 0, 0, 5);
  SkeletonSample b = generator.GenerateSample(0, 0, 0, 0, 5);
  EXPECT_TRUE(AllClose(a.data, b.data));
  SkeletonSample c = generator.GenerateSample(0, 0, 0, 0, 6);
  EXPECT_FALSE(AllClose(a.data, c.data));
}

TEST(SyntheticGeneratorTest, PrototypesAreClassSpecific) {
  SyntheticSkeletonGenerator generator(NtuLikeConfig(6, 2, 16, 7));
  const MotionPrototype& p0 = generator.PrototypeFor(0);
  const MotionPrototype& p1 = generator.PrototypeFor(1);
  EXPECT_GE(p0.drivers.size(), 1u);
  EXPECT_LE(p0.drivers.size(), 3u);
  // Different classes should differ somewhere in their driver sets.
  bool differ = p0.drivers.size() != p1.drivers.size();
  for (size_t i = 0; !differ && i < p0.drivers.size(); ++i) {
    differ = p0.drivers[i].joint != p1.drivers[i].joint ||
             p0.drivers[i].frequency != p1.drivers[i].frequency;
  }
  EXPECT_TRUE(differ);
}

TEST(SyntheticGeneratorTest, MotionConcentratesNearDrivers) {
  SyntheticDataConfig config = NtuLikeConfig(1, 1, 32, 123);
  config.sensor_noise = 0.0f;
  SyntheticSkeletonGenerator generator(config);
  const MotionPrototype& proto = generator.PrototypeFor(0);
  SkeletonSample sample = generator.GenerateSample(0, 0, 1, 0, 1);
  // Per-joint total displacement across frames.
  const Tensor& x = sample.data;
  std::vector<double> motion(25, 0.0);
  for (int64_t t = 1; t < 32; ++t) {
    for (int64_t j = 0; j < 25; ++j) {
      for (int64_t c = 0; c < 3; ++c) {
        double diff = x.at(c, t, j) - x.at(c, t - 1, j);
        motion[static_cast<size_t>(j)] += diff * diff;
      }
    }
  }
  // Driver joints move at least as much as the (attenuated) root.
  const SkeletonLayout& layout = GetSkeletonLayout(config.layout);
  for (const MotionDriver& driver : proto.drivers) {
    EXPECT_GT(motion[static_cast<size_t>(driver.joint)],
              motion[static_cast<size_t>(layout.root)] * 0.9);
  }
}

TEST(SyntheticGeneratorTest, KineticsConfigProducesConfidenceChannel) {
  SyntheticDataConfig config = KineticsLikeConfig(3, 2, 16, 11);
  SyntheticSkeletonGenerator generator(config);
  SkeletonSample sample = generator.GenerateSample(0, 0, 0, 0, 3);
  EXPECT_EQ(sample.data.shape(), (Shape{3, 16, 18}));
  // Channel 2 holds confidences in [0, 1].
  for (int64_t t = 0; t < 16; ++t) {
    for (int64_t j = 0; j < 18; ++j) {
      float conf = sample.data.at(2, t, j);
      EXPECT_GE(conf, 0.0f);
      EXPECT_LE(conf, 1.0f);
    }
  }
}

TEST(SyntheticGeneratorTest, JointDropoutZeroesCoordinates) {
  SyntheticDataConfig config = KineticsLikeConfig(2, 2, 64, 13);
  config.joint_dropout_prob = 0.3f;
  SyntheticSkeletonGenerator generator(config);
  SkeletonSample sample = generator.GenerateSample(0, 0, 0, 0, 17);
  int64_t dropped = 0, total = 0;
  for (int64_t t = 0; t < 64; ++t) {
    for (int64_t j = 0; j < 18; ++j) {
      ++total;
      if (sample.data.at(2, t, j) == 0.0f) {
        ++dropped;
        EXPECT_FLOAT_EQ(sample.data.at(0, t, j), 0.0f);
        EXPECT_FLOAT_EQ(sample.data.at(1, t, j), 0.0f);
      }
    }
  }
  double rate = static_cast<double>(dropped) / static_cast<double>(total);
  EXPECT_NEAR(rate, 0.3, 0.06);
}

TEST(SyntheticGeneratorTest, GenerateAllProducesBalancedClasses) {
  SyntheticSkeletonGenerator generator(NtuLikeConfig(4, 6, 16, 19));
  std::vector<SkeletonSample> samples = generator.GenerateAll();
  ASSERT_EQ(samples.size(), 24u);
  std::vector<int64_t> per_class(4, 0);
  for (const SkeletonSample& s : samples) {
    ++per_class[static_cast<size_t>(s.label)];
  }
  for (int64_t count : per_class) EXPECT_EQ(count, 6);
}

TEST(SyntheticGeneratorTest, CamerasChangeTheView) {
  SyntheticDataConfig config = NtuLikeConfig(2, 2, 16, 23);
  config.sensor_noise = 0.0f;
  SyntheticSkeletonGenerator generator(config);
  SkeletonSample cam0 = generator.GenerateSample(0, 0, 0, 0, 7);
  SkeletonSample cam2 = generator.GenerateSample(0, 0, 2, 0, 7);
  EXPECT_FALSE(AllClose(cam0.data, cam2.data, 1e-3f, 1e-3f));
}

// --- Dataset and splits -------------------------------------------------------------

SkeletonDataset MakeDataset() {
  SyntheticDataConfig config = NtuLikeConfig(4, 12, 12, 31);
  return SkeletonDataset::Generate(config).MoveValue();
}

TEST(DatasetTest, GenerateBasics) {
  SkeletonDataset dataset = MakeDataset();
  EXPECT_EQ(dataset.size(), 48);
  EXPECT_EQ(dataset.num_classes(), 4);
  EXPECT_EQ(dataset.layout().num_joints, 25);
}

TEST(DatasetTest, GenerateRejectsBadConfig) {
  SyntheticDataConfig config = NtuLikeConfig(0, 1, 16, 1);
  EXPECT_FALSE(SkeletonDataset::Generate(config).ok());
}

void ExpectValidSplit(const SkeletonDataset& dataset,
                      const DatasetSplit& split) {
  EXPECT_FALSE(split.train.empty());
  EXPECT_FALSE(split.test.empty());
  std::set<int64_t> seen;
  for (int64_t i : split.train) EXPECT_TRUE(seen.insert(i).second);
  for (int64_t i : split.test) EXPECT_TRUE(seen.insert(i).second);
  EXPECT_EQ(static_cast<int64_t>(seen.size()), dataset.size());
}

TEST(DatasetTest, CrossSubjectSplitsBySubject) {
  SkeletonDataset dataset = MakeDataset();
  DatasetSplit split = dataset.CrossSubjectSplit({0, 2, 4, 6});
  ExpectValidSplit(dataset, split);
  for (int64_t i : split.train) {
    EXPECT_EQ(dataset.sample(i).subject % 2, 0);
  }
  for (int64_t i : split.test) {
    EXPECT_EQ(dataset.sample(i).subject % 2, 1);
  }
}

TEST(DatasetTest, CrossViewHoldsOutCamera) {
  SkeletonDataset dataset = MakeDataset();
  DatasetSplit split = dataset.CrossViewSplit(1);
  ExpectValidSplit(dataset, split);
  for (int64_t i : split.test) EXPECT_EQ(dataset.sample(i).camera, 1);
  for (int64_t i : split.train) EXPECT_NE(dataset.sample(i).camera, 1);
}

TEST(DatasetTest, CrossSetupSplitsByParity) {
  SkeletonDataset dataset = MakeDataset();
  DatasetSplit split = dataset.CrossSetupSplit();
  ExpectValidSplit(dataset, split);
  for (int64_t i : split.train) EXPECT_EQ(dataset.sample(i).setup % 2, 0);
  for (int64_t i : split.test) EXPECT_EQ(dataset.sample(i).setup % 2, 1);
}

TEST(DatasetTest, RandomSplitIsStratifiedAndDeterministic) {
  SkeletonDataset dataset = MakeDataset();
  DatasetSplit a = dataset.RandomSplit(0.25f, 77);
  DatasetSplit b = dataset.RandomSplit(0.25f, 77);
  EXPECT_EQ(a.train, b.train);
  EXPECT_EQ(a.test, b.test);
  ExpectValidSplit(dataset, a);
  // Every class appears in the test set.
  std::set<int64_t> test_classes;
  for (int64_t i : a.test) test_classes.insert(dataset.sample(i).label);
  EXPECT_EQ(test_classes.size(), 4u);
}

// --- Transforms ------------------------------------------------------------------------

TEST(TransformsTest, JointToBoneRootIsZero) {
  SkeletonDataset dataset = MakeDataset();
  const SkeletonLayout& layout = dataset.layout();
  Tensor bones = JointToBone(dataset.sample(0).data, layout);
  EXPECT_EQ(bones.shape(), dataset.sample(0).data.shape());
  for (int64_t c = 0; c < 3; ++c) {
    for (int64_t t = 0; t < bones.dim(1); ++t) {
      EXPECT_FLOAT_EQ(bones.at(c, t, layout.root), 0.0f);
    }
  }
}

TEST(TransformsTest, JointToBoneMatchesManualDifference) {
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kNtu25);
  Rng rng(80);
  Tensor joints = Tensor::RandomNormal({3, 2, 25}, rng);
  Tensor bones = JointToBone(joints, layout);
  for (int64_t j = 0; j < 25; ++j) {
    int64_t parent = layout.parents[static_cast<size_t>(j)];
    EXPECT_FLOAT_EQ(bones.at(0, 1, j),
                    joints.at(0, 1, j) - joints.at(0, 1, parent));
  }
}

TEST(TransformsTest, JointToBoneBatched) {
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kKinetics18);
  Rng rng(81);
  Tensor joints = Tensor::RandomNormal({2, 3, 4, 18}, rng);
  Tensor bones = JointToBone(joints, layout);
  EXPECT_EQ(bones.shape(), joints.shape());
  for (int64_t c = 0; c < 3; ++c) {
    EXPECT_FLOAT_EQ(bones.at(1, c, 2, layout.root), 0.0f);
  }
}

TEST(TransformsTest, CenterOnRootZeroesRoot) {
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kNtu25);
  Rng rng(82);
  Tensor joints = Tensor::RandomNormal({3, 5, 25}, rng);
  Tensor centered = CenterOnRoot(joints, layout);
  for (int64_t c = 0; c < 3; ++c) {
    for (int64_t t = 0; t < 5; ++t) {
      EXPECT_FLOAT_EQ(centered.at(c, t, layout.root), 0.0f);
    }
  }
  // Relative geometry is preserved.
  EXPECT_NEAR(centered.at(0, 0, 3) - centered.at(0, 0, 5),
              joints.at(0, 0, 3) - joints.at(0, 0, 5), 1e-5f);
}

TEST(TransformsTest, TemporalDifference) {
  Tensor joints({1, 3, 2});
  joints.at(0, 0, 0) = 1.0f;
  joints.at(0, 1, 0) = 4.0f;
  joints.at(0, 2, 0) = 9.0f;
  Tensor motion = TemporalDifference(joints);
  EXPECT_FLOAT_EQ(motion.at(0, 0, 0), 3.0f);
  EXPECT_FLOAT_EQ(motion.at(0, 1, 0), 5.0f);
  EXPECT_FLOAT_EQ(motion.at(0, 2, 0), 0.0f);  // last frame zero
}

TEST(TransformsTest, ResampleFramesUpAndDown) {
  Tensor joints = Tensor::Arange(8).Reshape({1, 8, 1});
  Tensor down = ResampleFrames(joints, 4);
  EXPECT_EQ(down.shape(), (Shape{1, 4, 1}));
  EXPECT_FLOAT_EQ(down.at(0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(down.at(0, 3, 0), 6.0f);
  Tensor up = ResampleFrames(joints, 16);
  EXPECT_EQ(up.shape(), (Shape{1, 16, 1}));
  EXPECT_FLOAT_EQ(up.at(0, 15, 0), 7.0f);
}

// --- DataLoader --------------------------------------------------------------------------

TEST(DataLoaderTest, BatchShapesAndLabels) {
  SkeletonDataset dataset = MakeDataset();
  DatasetSplit split = dataset.CrossSubjectSplit();
  DataLoader loader(&dataset, split.train, 8, InputStream::kJoint,
                    /*shuffle=*/false);
  Batch batch = loader.GetBatch(0);
  EXPECT_EQ(batch.x.shape(), (Shape{8, 3, 12, 25}));
  EXPECT_EQ(batch.labels.size(), 8u);
}

TEST(DataLoaderTest, LastBatchMayBeShort) {
  SkeletonDataset dataset = MakeDataset();
  std::vector<int64_t> indices = {0, 1, 2, 3, 4};
  DataLoader loader(&dataset, indices, 2, InputStream::kJoint, false);
  EXPECT_EQ(loader.NumBatches(), 3);
  EXPECT_EQ(loader.GetBatch(2).x.dim(0), 1);
}

TEST(DataLoaderTest, CoversAllSamplesEachEpoch) {
  SkeletonDataset dataset = MakeDataset();
  DatasetSplit split = dataset.CrossViewSplit(0);
  DataLoader loader(&dataset, split.train, 7, InputStream::kJoint,
                    /*shuffle=*/true, Rng(3));
  for (int epoch = 0; epoch < 3; ++epoch) {
    loader.StartEpoch();
    std::set<int64_t> seen;
    for (int64_t b = 0; b < loader.NumBatches(); ++b) {
      Batch batch = loader.GetBatch(b);
      for (int64_t idx : batch.sample_indices) seen.insert(idx);
    }
    EXPECT_EQ(seen.size(), split.train.size());
  }
}

TEST(DataLoaderTest, ShuffleChangesOrder) {
  SkeletonDataset dataset = MakeDataset();
  DatasetSplit split = dataset.CrossSubjectSplit();
  DataLoader loader(&dataset, split.train, 100, InputStream::kJoint,
                    /*shuffle=*/true, Rng(5));
  Batch first = loader.GetBatch(0);
  loader.StartEpoch();
  Batch second = loader.GetBatch(0);
  EXPECT_NE(first.sample_indices, second.sample_indices);
}

TEST(DataLoaderTest, BoneStreamDiffersFromJointStream) {
  SkeletonDataset dataset = MakeDataset();
  std::vector<int64_t> indices = {0};
  DataLoader joint_loader(&dataset, indices, 1, InputStream::kJoint, false);
  DataLoader bone_loader(&dataset, indices, 1, InputStream::kBone, false);
  Tensor joint_x = joint_loader.GetBatch(0).x;
  Tensor bone_x = bone_loader.GetBatch(0).x;
  EXPECT_FALSE(AllClose(joint_x, bone_x, 1e-3f, 1e-3f));
}

TEST(DataLoaderTest, JointStreamIsRootCentered) {
  SkeletonDataset dataset = MakeDataset();
  const SkeletonLayout& layout = dataset.layout();
  DataLoader loader(&dataset, {0, 1}, 2, InputStream::kJoint, false);
  Tensor x = loader.GetBatch(0).x;
  for (int64_t n = 0; n < 2; ++n) {
    for (int64_t t = 0; t < x.dim(2); ++t) {
      EXPECT_FLOAT_EQ(x.at(n, 0, t, layout.root), 0.0f);
    }
  }
}

}  // namespace
}  // namespace dhgcn
