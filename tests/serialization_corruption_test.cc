// Checkpoint-corruption robustness: bit-flip and truncate a v2
// checkpoint at every section boundary (magic, version, flags,
// entry_count, and each block's length field / payload start / CRC).
// Every corruption must come back as a descriptive error Status — never
// an abort, a crash, or a huge allocation — and must leave the target
// model untouched (validate-then-commit).

#include "io/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/dhgcn_model.h"

namespace dhgcn {
namespace {

DhgcnConfig TestConfig() {
  return DhgcnConfig::Tiny(SkeletonLayoutType::kNtu25, /*num_classes=*/3);
}

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

uint64_t ReadU64At(const std::string& bytes, size_t offset) {
  uint64_t value = 0;
  std::memcpy(&value, bytes.data() + offset, sizeof(value));
  return value;
}

/// Section boundaries of a v2 file: header fields, then per block the
/// length field, the payload start, and the trailing CRC.
std::vector<size_t> SectionBoundaries(const std::string& bytes) {
  std::vector<size_t> out = {0, 4, 8, 12};  // magic/version/flags/count
  size_t offset = 20;                       // first block's length field
  while (offset + 8 <= bytes.size()) {
    out.push_back(offset);  // payload_len
    uint64_t len = ReadU64At(bytes, offset);
    if (offset + 8 + len + 4 > bytes.size()) break;  // malformed tail
    out.push_back(offset + 8);            // payload start
    out.push_back(offset + 8 + len);      // crc
    offset += 8 + len + 4;
  }
  return out;
}

class SerializationCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("dhgcn_corruption_test.ckpt");
    auto model = DhgcnModel::Make(TestConfig());
    ASSERT_TRUE(model.ok());
    model_ = model.MoveValue();
    ASSERT_TRUE(SaveParameters(path_, *model_).ok());
    bytes_ = ReadFileBytes(path_);
    ASSERT_GT(bytes_.size(), 24u);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  /// Loads `corrupt` into a fresh model; returns the load status.
  Status LoadCorrupt(const std::string& corrupt) {
    WriteFileBytes(path_, corrupt);
    auto victim = DhgcnModel::Make(TestConfig());
    EXPECT_TRUE(victim.ok());
    return LoadParameters(path_, **victim);
  }

  std::string path_;
  std::unique_ptr<DhgcnModel> model_;
  std::string bytes_;
};

TEST_F(SerializationCorruptionTest, IntactFileRoundTrips) {
  auto victim = DhgcnModel::Make(TestConfig());
  ASSERT_TRUE(victim.ok());
  EXPECT_TRUE(LoadParameters(path_, **victim).ok());
}

TEST_F(SerializationCorruptionTest, BitFlipAtEveryBoundaryIsRejected) {
  std::vector<size_t> boundaries = SectionBoundaries(bytes_);
  ASSERT_GE(boundaries.size(), 7u);  // header + at least one full block
  for (size_t offset : boundaries) {
    std::string corrupt = bytes_;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x01);
    Status status = LoadCorrupt(corrupt);
    EXPECT_FALSE(status.ok()) << "bit flip at offset " << offset
                              << " was not detected";
    EXPECT_FALSE(status.ToString().empty());
  }
}

TEST_F(SerializationCorruptionTest, BitFlipInEveryPayloadIsCaughtByCrc) {
  // Flip a byte in the middle of each block payload: framing stays
  // intact, so only the CRC can catch it.
  size_t offset = 20;
  int blocks = 0;
  while (offset + 8 <= bytes_.size()) {
    uint64_t len = ReadU64At(bytes_, offset);
    if (len == 0 || offset + 8 + len + 4 > bytes_.size()) break;
    std::string corrupt = bytes_;
    size_t mid = offset + 8 + len / 2;
    corrupt[mid] = static_cast<char>(corrupt[mid] ^ 0x40);
    Status status = LoadCorrupt(corrupt);
    EXPECT_FALSE(status.ok())
        << "payload flip in block at " << offset << " undetected";
    EXPECT_NE(status.ToString().find("CRC"), std::string::npos)
        << status.ToString();
    offset += 8 + len + 4;
    ++blocks;
  }
  EXPECT_GT(blocks, 1);
}

TEST_F(SerializationCorruptionTest, UnknownHeaderFlagBitsAreRejected) {
  // Offset 8 is the v2 flags word; only bit 0 (trainer state) is
  // defined. Any other bit means corruption or a newer format, and the
  // loader must say so rather than guess.
  std::string corrupt = bytes_;
  corrupt[8] = static_cast<char>(corrupt[8] ^ 0x40);
  Status status = LoadCorrupt(corrupt);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("flags"), std::string::npos)
      << status.ToString();
}

TEST_F(SerializationCorruptionTest, TruncationAtEveryBoundaryIsRejected) {
  std::vector<size_t> cuts = SectionBoundaries(bytes_);
  cuts.push_back(bytes_.size() - 1);  // torn final CRC
  cuts.push_back(bytes_.size() / 2);  // mid-payload tear
  for (size_t cut : cuts) {
    Status status = LoadCorrupt(bytes_.substr(0, cut));
    EXPECT_FALSE(status.ok())
        << "truncation to " << cut << " bytes was not detected";
  }
}

TEST_F(SerializationCorruptionTest, GarbageLengthFieldIsBounded) {
  // Blow up the first block's length field: the reader must reject it as
  // implausible instead of attempting a giant allocation.
  std::string corrupt = bytes_;
  uint64_t huge = 1ULL << 60;
  std::memcpy(&corrupt[20], &huge, sizeof(huge));
  Status status = LoadCorrupt(corrupt);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("implausible"), std::string::npos)
      << status.ToString();
}

TEST_F(SerializationCorruptionTest, CorruptLoadLeavesModelUntouched) {
  // Validate-then-commit: a load that fails after parsing some entries
  // must not have modified any parameter.
  auto victim_result = DhgcnModel::Make(TestConfig());
  ASSERT_TRUE(victim_result.ok());
  std::unique_ptr<DhgcnModel> victim = victim_result.MoveValue();
  std::vector<ParamRef> params = victim->Params();
  std::vector<Tensor> before;
  for (ParamRef& p : params) before.push_back(p.value->Clone());

  // Corrupt the LAST block so earlier entries parse cleanly.
  std::string corrupt = bytes_;
  corrupt[corrupt.size() - 2] =
      static_cast<char>(corrupt[corrupt.size() - 2] ^ 0x10);
  WriteFileBytes(path_, corrupt);
  ASSERT_FALSE(LoadParameters(path_, *victim).ok());

  for (size_t i = 0; i < params.size(); ++i) {
    const Tensor& now = *params[i].value;
    const Tensor& old = before[i];
    ASSERT_EQ(now.numel(), old.numel());
    for (int64_t j = 0; j < now.numel(); ++j) {
      ASSERT_EQ(now.flat(j), old.flat(j))
          << params[i].name << " changed by a failed load";
    }
  }
}

TEST_F(SerializationCorruptionTest, ReadTensorRejectsImplausibleDims) {
  // Direct ReadTensor hardening: corrupt dimension fields must error out
  // before any allocation, including products that overflow int64.
  struct Case {
    uint64_t ndim;
    std::vector<int64_t> dims;
  };
  std::vector<Case> cases = {
      {2, {1LL << 31, 1LL << 31}},          // product overflows
      {1, {-4}},                            // negative
      {1, {1LL << 40}},                     // single huge dim
      {3, {1 << 20, 1 << 20, 1 << 20}},     // petabyte request
      {17, {}},                             // implausible rank
  };
  for (const Case& c : cases) {
    std::ostringstream os;
    uint64_t ndim = c.ndim;
    os.write(reinterpret_cast<const char*>(&ndim), sizeof(ndim));
    for (int64_t d : c.dims) {
      os.write(reinterpret_cast<const char*>(&d), sizeof(d));
    }
    std::istringstream is(os.str());
    Result<Tensor> tensor = ReadTensor(is);
    EXPECT_FALSE(tensor.ok()) << "ndim=" << c.ndim << " accepted";
  }
}

TEST_F(SerializationCorruptionTest, EmptyAndForeignFilesAreRejected) {
  EXPECT_FALSE(LoadCorrupt("").ok());
  EXPECT_FALSE(LoadCorrupt("not a checkpoint at all").ok());
  std::string wrong_magic = bytes_;
  wrong_magic[0] = 'X';
  Status status = LoadCorrupt(wrong_magic);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("magic"), std::string::npos);
}

}  // namespace
}  // namespace dhgcn
