// Parameterized property tests: algebraic invariants checked across
// swept shapes/sizes rather than single examples.

#include <cstring>
#include <sstream>
#include <tuple>

#include "gtest/gtest.h"

#include "base/rng.h"
#include "core/dynamic_joint_weight.h"
#include "hypergraph/hypergraph.h"
#include "hypergraph/hypergraph_conv.h"
#include "hypergraph/kmeans.h"
#include "hypergraph/knn.h"
#include "io/serialization.h"
#include "nn/conv2d.h"
#include "tensor/linalg.h"
#include "tensor/sparse.h"
#include "tensor/tensor_ops.h"

namespace dhgcn {
namespace {

// --- Broadcast algebra over shape pairs ---------------------------------------

using ShapePair = std::tuple<Shape, Shape>;

class BroadcastAlgebraTest : public ::testing::TestWithParam<ShapePair> {};

TEST_P(BroadcastAlgebraTest, AddAndMulAreCommutative) {
  auto [sa, sb] = GetParam();
  Rng rng(1);
  Tensor a = Tensor::RandomNormal(sa, rng);
  Tensor b = Tensor::RandomNormal(sb, rng);
  EXPECT_TRUE(AllClose(Add(a, b), Add(b, a), 1e-6f, 1e-7f));
  EXPECT_TRUE(AllClose(Mul(a, b), Mul(b, a), 1e-6f, 1e-7f));
}

TEST_P(BroadcastAlgebraTest, SubIsAntiCommutative) {
  auto [sa, sb] = GetParam();
  Rng rng(2);
  Tensor a = Tensor::RandomNormal(sa, rng);
  Tensor b = Tensor::RandomNormal(sb, rng);
  EXPECT_TRUE(AllClose(Sub(a, b), Neg(Sub(b, a)), 1e-6f, 1e-7f));
}

TEST_P(BroadcastAlgebraTest, MulDistributesOverAdd) {
  auto [sa, sb] = GetParam();
  Rng rng(3);
  Tensor a = Tensor::RandomNormal(sa, rng);
  Tensor b = Tensor::RandomNormal(sb, rng);
  Tensor c = Tensor::RandomNormal(sb, rng);
  Tensor lhs = Mul(a, Add(b, c));
  Tensor rhs = Add(Mul(a, b), Mul(a, c));
  EXPECT_TRUE(AllClose(lhs, rhs, 1e-4f, 1e-5f));
}

TEST_P(BroadcastAlgebraTest, ReduceToShapeIsBroadcastAdjoint) {
  auto [sa, sb] = GetParam();
  Rng rng(4);
  Tensor a = Tensor::RandomNormal(sa, rng);
  Shape target = BroadcastShapes(sa, sb);
  Tensor g = Tensor::RandomNormal(target, rng);
  float lhs = Dot(BroadcastTo(a, target), g);
  float rhs = Dot(a, ReduceToShape(g, sa));
  EXPECT_NEAR(lhs, rhs, 2e-3f * (1.0f + std::fabs(lhs)));
}

INSTANTIATE_TEST_SUITE_P(
    ShapePairs, BroadcastAlgebraTest,
    ::testing::Values(ShapePair{{4}, {4}}, ShapePair{{1}, {5}},
                      ShapePair{{3, 1}, {1, 4}},
                      ShapePair{{2, 3, 4}, {3, 4}},
                      ShapePair{{2, 1, 4}, {2, 5, 1}},
                      ShapePair{{}, {2, 2}}));

// --- Softmax along every axis ----------------------------------------------------

class SoftmaxAxisTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(SoftmaxAxisTest, SlicesSumToOne) {
  int64_t axis = GetParam();
  Rng rng(5);
  Tensor x = Tensor::RandomNormal({3, 4, 5}, rng, 0.0f, 4.0f);
  Tensor p = Softmax(x, axis);
  Tensor sums = ReduceSum(p, axis);
  for (int64_t i = 0; i < sums.numel(); ++i) {
    EXPECT_NEAR(sums.flat(i), 1.0f, 1e-5f);
  }
}

TEST_P(SoftmaxAxisTest, LogSoftmaxIsLogOfSoftmax) {
  int64_t axis = GetParam();
  Rng rng(6);
  Tensor x = Tensor::RandomNormal({3, 4, 5}, rng);
  EXPECT_TRUE(
      AllClose(Exp(LogSoftmax(x, axis)), Softmax(x, axis), 1e-4f, 1e-5f));
}

INSTANTIATE_TEST_SUITE_P(Axes, SoftmaxAxisTest,
                         ::testing::Values(0, 1, 2, -1));

// --- K-means invariants over (V, k) -----------------------------------------------

using VkParam = std::tuple<int64_t, int64_t>;

class KMeansSweepTest : public ::testing::TestWithParam<VkParam> {};

TEST_P(KMeansSweepTest, DisjointCoverWithKClusters) {
  auto [v, k] = GetParam();
  Rng data_rng(7);
  Tensor features = Tensor::RandomNormal({v, 3}, data_rng);
  Rng rng(8);
  KMeansResult result = KMeansClusters(features, k, rng);
  ASSERT_EQ(static_cast<int64_t>(result.clusters.size()), k);
  std::vector<int64_t> seen(static_cast<size_t>(v), 0);
  for (const Hyperedge& cluster : result.clusters) {
    EXPECT_FALSE(cluster.empty());
    for (int64_t vertex : cluster) ++seen[static_cast<size_t>(vertex)];
  }
  for (int64_t count : seen) EXPECT_EQ(count, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, KMeansSweepTest,
    ::testing::Values(VkParam{5, 1}, VkParam{5, 5}, VkParam{18, 4},
                      VkParam{25, 3}, VkParam{25, 4}, VkParam{25, 5},
                      VkParam{40, 8}));

// --- K-NN invariants over k ---------------------------------------------------------

class KnnSweepTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(KnnSweepTest, EveryEdgeAnchoredWithKDistinctVertices) {
  int64_t k = GetParam();
  Rng rng(9);
  Tensor features = Tensor::RandomNormal({25, 3}, rng);
  std::vector<Hyperedge> edges = KnnHyperedges(features, k);
  ASSERT_EQ(edges.size(), 25u);
  Tensor dist = PairwiseDistances(features);
  for (int64_t i = 0; i < 25; ++i) {
    const Hyperedge& e = edges[static_cast<size_t>(i)];
    ASSERT_EQ(static_cast<int64_t>(e.size()), k);
    EXPECT_EQ(e[0], i);
    // Every member is at most as far as any non-member.
    float worst_member = 0.0f;
    for (int64_t m : e) {
      if (m != i) worst_member = std::max(worst_member, dist.at(i, m));
    }
    for (int64_t u = 0; u < 25; ++u) {
      bool is_member = std::find(e.begin(), e.end(), u) != e.end();
      if (!is_member) {
        EXPECT_GE(dist.at(i, u), worst_member - 1e-6f);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KnnSweepTest, ::testing::Values(2, 3, 4, 6));

// --- Hypergraph operator PSD over random topologies ----------------------------------

class RandomHypergraphTest : public ::testing::TestWithParam<uint64_t> {};

Hypergraph RandomHypergraph(uint64_t seed) {
  Rng rng(seed);
  int64_t v = rng.UniformInt(5, 20);
  int64_t ne = rng.UniformInt(2, 8);
  std::vector<Hyperedge> edges;
  for (int64_t e = 0; e < ne; ++e) {
    int64_t size = rng.UniformInt(2, std::min<int64_t>(v, 6));
    edges.push_back(rng.SampleWithoutReplacement(v, size));
  }
  return Hypergraph(v, std::move(edges));
}

TEST_P(RandomHypergraphTest, OperatorSymmetricPsdBoundedSpectrum) {
  Hypergraph h = RandomHypergraph(GetParam());
  Tensor op = NormalizedHypergraphOperator(h);
  int64_t v = h.num_vertices();
  EXPECT_TRUE(AllClose(op, Transpose2D(op), 1e-5f, 1e-6f));
  Rng rng(GetParam() + 1);
  for (int trial = 0; trial < 8; ++trial) {
    Tensor x = Tensor::RandomNormal({v, 1}, rng);
    float quad = MatMul(Transpose2D(x), MatMul(op, x)).flat(0);
    EXPECT_GE(quad, -1e-4f);
    // Rayleigh quotient bounded by 1 (normalized operator).
    float norm_sq = Dot(x, x);
    EXPECT_LE(quad, norm_sq * (1.0f + 1e-4f));
  }
}

TEST_P(RandomHypergraphTest, LearnableMixWithUnitWeightsMatchesOperator) {
  Hypergraph h = RandomHypergraph(GetParam() + 100);
  LearnableHyperedgeMix mix(h);
  VertexMix fixed(NormalizedHypergraphOperator(h));
  Rng rng(GetParam() + 2);
  Tensor x = Tensor::RandomNormal({1, 2, 2, h.num_vertices()}, rng);
  EXPECT_TRUE(AllClose(mix.Forward(x), fixed.Forward(x), 1e-4f, 1e-5f));
}

TEST_P(RandomHypergraphTest, SparseMatchesDenseAggregation) {
  Hypergraph h = RandomHypergraph(GetParam() + 200);
  Tensor op = NormalizedHypergraphOperator(h);
  VertexMix dense(op);
  SparseVertexMix sparse(op);
  Rng rng(GetParam() + 3);
  Tensor x = Tensor::RandomNormal({2, 2, 3, h.num_vertices()}, rng);
  EXPECT_TRUE(AllClose(sparse.Forward(x), dense.Forward(x), 1e-4f, 1e-5f));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomHypergraphTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// --- Joint-weight operators: stride / conv output consistency -------------------------

using StrideParam = std::tuple<int64_t, int64_t>;

class StrideConsistencyTest : public ::testing::TestWithParam<StrideParam> {
};

TEST_P(StrideConsistencyTest, OperatorStrideMatchesConvOutput) {
  auto [t, stride] = GetParam();
  Tensor ops({1, t, 2, 2});
  Tensor strided = StrideOperatorsInTime(ops, stride);
  int64_t conv_out =
      Conv2d::OutputDim(t, /*kernel=*/3, stride, /*pad=*/1, /*dilation=*/1);
  EXPECT_EQ(strided.dim(1), conv_out) << "T=" << t << " s=" << stride;
}

INSTANTIATE_TEST_SUITE_P(Geometries, StrideConsistencyTest,
                         ::testing::Values(StrideParam{8, 1},
                                           StrideParam{8, 2},
                                           StrideParam{9, 2},
                                           StrideParam{15, 2},
                                           StrideParam{16, 4},
                                           StrideParam{7, 3}));

// --- Serialization round-trips over shapes ---------------------------------------------

class TensorIoSweepTest : public ::testing::TestWithParam<Shape> {};

TEST_P(TensorIoSweepTest, RoundTripExact) {
  Rng rng(10);
  Tensor original = Tensor::RandomNormal(GetParam(), rng);
  std::stringstream stream;
  ASSERT_TRUE(WriteTensor(stream, original).ok());
  Result<Tensor> loaded = ReadTensor(stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->shape(), original.shape());
  EXPECT_TRUE(AllClose(*loaded, original, 0.0f, 0.0f));
}

INSTANTIATE_TEST_SUITE_P(Shapes, TensorIoSweepTest,
                         ::testing::Values(Shape{}, Shape{1}, Shape{7},
                                           Shape{3, 4}, Shape{2, 3, 4},
                                           Shape{1, 1, 1, 1},
                                           Shape{2, 3, 4, 5}));

// --- GEMM transpose identities over sizes ------------------------------------------------

using GemmParam = std::tuple<int64_t, int64_t, int64_t>;

class GemmSweepTest : public ::testing::TestWithParam<GemmParam> {};

TEST_P(GemmSweepTest, TransposeVariantsAgree) {
  auto [m, k, n] = GetParam();
  Rng rng(11);
  Tensor a = Tensor::RandomNormal({m, k}, rng);
  Tensor b = Tensor::RandomNormal({k, n}, rng);
  Tensor reference = MatMul(a, b);
  EXPECT_TRUE(AllClose(MatMulTransposedA(Transpose2D(a), b), reference,
                       1e-4f, 1e-5f));
  EXPECT_TRUE(AllClose(MatMulTransposedB(a, Transpose2D(b)), reference,
                       1e-4f, 1e-5f));
  // Sparse path agrees too.
  CsrMatrix a_sparse = CsrMatrix::FromDense(a);
  EXPECT_TRUE(AllClose(SpMM(a_sparse, b), reference, 1e-4f, 1e-5f));
}

INSTANTIATE_TEST_SUITE_P(Sizes, GemmSweepTest,
                         ::testing::Values(GemmParam{1, 1, 1},
                                           GemmParam{1, 8, 3},
                                           GemmParam{5, 1, 5},
                                           GemmParam{7, 11, 3},
                                           GemmParam{16, 16, 16}));

// --- CSR invariants over randomized densities -----------------------------------------

Tensor RandomAtDensity(const Shape& shape, double density, Rng& rng) {
  Tensor t = Tensor::RandomNormal(shape, rng);
  for (int64_t i = 0; i < t.numel(); ++i) {
    if (rng.Uniform() >= static_cast<float>(density)) t.flat(i) = 0.0f;
  }
  return t;
}

class CsrSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(CsrSweepTest, FromDenseRoundTripIsExact) {
  double density = GetParam();
  Rng rng(12);
  Tensor dense = RandomAtDensity({13, 19}, density, rng);
  CsrMatrix csr = CsrMatrix::FromDense(dense);
  Tensor back = csr.ToDense();
  ASSERT_EQ(back.shape(), dense.shape());
  EXPECT_EQ(std::memcmp(back.data(), dense.data(),
                        sizeof(float) * dense.numel()),
            0);
  // Structural invariants: ascending columns per row, no stored zeros.
  for (int64_t r = 0; r < csr.rows(); ++r) {
    for (int64_t i = csr.row_ptr()[r]; i < csr.row_ptr()[r + 1]; ++i) {
      if (i > csr.row_ptr()[r]) {
        EXPECT_LT(csr.col_idx()[i - 1], csr.col_idx()[i]);
      }
      EXPECT_NE(csr.values()[i], 0.0f);
    }
  }
}

TEST_P(CsrSweepTest, AssignFromDenseMatchesFromDense) {
  double density = GetParam();
  Rng rng(13);
  CsrMatrix reused(1, 1);
  // Two rebuilds with different patterns: capacity reuse must not leak
  // state from the previous build.
  for (uint64_t round = 0; round < 2; ++round) {
    Tensor dense = RandomAtDensity({11, 17}, density, rng);
    reused.AssignFromDense(dense);
    CsrMatrix fresh = CsrMatrix::FromDense(dense);
    EXPECT_EQ(reused.row_ptr(), fresh.row_ptr());
    EXPECT_EQ(reused.col_idx(), fresh.col_idx());
    EXPECT_EQ(reused.values(), fresh.values());
  }
}

TEST_P(CsrSweepTest, TransposedIsAnInvolution) {
  double density = GetParam();
  Rng rng(14);
  Tensor dense = RandomAtDensity({9, 14}, density, rng);
  CsrMatrix csr = CsrMatrix::FromDense(dense);
  CsrMatrix tt = csr.Transposed().Transposed();
  EXPECT_EQ(tt.rows(), csr.rows());
  EXPECT_EQ(tt.cols(), csr.cols());
  EXPECT_EQ(tt.row_ptr(), csr.row_ptr());
  EXPECT_EQ(tt.col_idx(), csr.col_idx());
  EXPECT_EQ(tt.values(), csr.values());
  // And a single transpose matches the dense transpose.
  EXPECT_TRUE(AllClose(csr.Transposed().ToDense(), Transpose2D(dense),
                       0.0f, 0.0f));
}

TEST_P(CsrSweepTest, SpMMFamilyMatchesDenseMatMul) {
  double density = GetParam();
  Rng rng(15);
  Tensor a = RandomAtDensity({12, 18}, density, rng);
  Tensor b = Tensor::RandomNormal({18, 7}, rng);
  CsrMatrix a_csr = CsrMatrix::FromDense(a);
  Tensor reference = MatMul(a, b);
  EXPECT_TRUE(AllClose(SpMM(a_csr, b), reference, 1e-4f, 1e-5f));
  Tensor into({12, 7});
  SpMMInto(a_csr, b, &into);
  EXPECT_TRUE(AllClose(into, reference, 1e-4f, 1e-5f));
}

INSTANTIATE_TEST_SUITE_P(Densities, CsrSweepTest,
                         ::testing::Values(0.0, 0.05, 0.3, 0.7, 1.0));

TEST(CsrEdgeCases, FromTripletsSumsDuplicatesAndSortsColumns) {
  CsrMatrix csr = CsrMatrix::FromTriplets(
      3, 4, {{1, 2, 1.5f}, {0, 3, 2.0f}, {1, 0, -1.0f}, {1, 2, 0.5f}});
  EXPECT_EQ(csr.nnz(), 3);
  Tensor dense = csr.ToDense();
  EXPECT_EQ(dense.at(0, 3), 2.0f);
  EXPECT_EQ(dense.at(1, 0), -1.0f);
  EXPECT_EQ(dense.at(1, 2), 2.0f);  // 1.5 + 0.5 summed
  // Row 2 is empty.
  EXPECT_EQ(csr.row_ptr()[2], csr.row_ptr()[3]);
}

TEST(CsrEdgeCases, AllZeroAndEmptyRowOperands) {
  Tensor zero({5, 6});
  zero.Fill(0.0f);
  CsrMatrix csr = CsrMatrix::FromDense(zero);
  EXPECT_EQ(csr.nnz(), 0);
  EXPECT_EQ(csr.Density(), 0.0);
  Rng rng(16);
  Tensor b = Tensor::RandomNormal({6, 3}, rng);
  Tensor y({5, 3});
  SpMMInto(csr, b, &y);
  for (int64_t i = 0; i < y.numel(); ++i) EXPECT_EQ(y.flat(i), 0.0f);

  // A matrix whose middle rows are empty must still produce exact rows.
  Tensor gappy({4, 6});
  gappy.Fill(0.0f);
  gappy.at(0, 1) = 2.0f;
  gappy.at(3, 5) = -3.0f;
  CsrMatrix gappy_csr = CsrMatrix::FromDense(gappy);
  Tensor ref = MatMul(gappy, b);
  Tensor out({4, 3});
  SpMMInto(gappy_csr, b, &out);
  EXPECT_TRUE(AllClose(out, ref, 0.0f, 0.0f));
}

TEST(CsrEdgeCases, OneByOne) {
  Tensor unit({1, 1});
  unit.at(0, 0) = 3.0f;
  CsrMatrix csr = CsrMatrix::FromDense(unit);
  EXPECT_EQ(csr.nnz(), 1);
  Tensor b({1, 1});
  b.at(0, 0) = -2.0f;
  Tensor y({1, 1});
  SpMMInto(csr, b, &y);
  EXPECT_EQ(y.at(0, 0), -6.0f);
}

}  // namespace
}  // namespace dhgcn
