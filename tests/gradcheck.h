#ifndef DHGCN_TESTS_GRADCHECK_H_
#define DHGCN_TESTS_GRADCHECK_H_

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "base/rng.h"
#include "nn/layer.h"
#include "tensor/tensor_ops.h"

namespace dhgcn::testing {

/// Finite-difference gradient checking for explicit-backward layers.
///
/// Builds the scalar loss L = <w, layer.Forward(x)> for a fixed random
/// weighting w, obtains analytic gradients from layer.Backward(w), and
/// compares them against central differences for a random sample of
/// input coordinates and of every parameter's coordinates.
struct GradCheckOptions {
  float epsilon = 2e-3f;
  float rtol = 6e-2f;
  float atol = 3e-4f;
  int64_t samples_per_tensor = 24;
  uint64_t seed = 1234;
};

inline void ExpectGradientsMatch(Layer& layer, const Tensor& input,
                                 const GradCheckOptions& options = {}) {
  Rng rng(options.seed);
  Tensor x = input.Clone();

  // Deterministic forward is required; caller must configure the layer
  // accordingly (e.g. Dropout in eval mode).
  Tensor out0 = layer.Forward(x);
  Tensor w = Tensor::RandomNormal(out0.shape(), rng);

  layer.ZeroGrad();
  Tensor out = layer.Forward(x);
  Tensor analytic_dx = layer.Backward(w);
  ASSERT_TRUE(ShapesEqual(analytic_dx.shape(), x.shape()));

  // Snapshot analytic gradients of the trainable parameters before any
  // perturbation (non-trainable buffers carry no gradient).
  std::vector<ParamRef> params;
  for (ParamRef& p : layer.Params()) {
    if (p.trainable) params.push_back(p);
  }
  std::vector<Tensor> param_grads;
  for (ParamRef& p : params) param_grads.push_back(p.grad->Clone());

  auto loss_at = [&layer, &w](const Tensor& point) {
    Tensor y = layer.Forward(point);
    return static_cast<double>(Dot(y, w));
  };

  auto check_coordinate = [&](float* value, float analytic,
                              const std::string& what) {
    float original = *value;
    float eps = options.epsilon * std::max(1.0f, std::fabs(original));
    *value = original + eps;
    double up = loss_at(x);
    *value = original - eps;
    double down = loss_at(x);
    *value = original;
    double numeric = (up - down) / (2.0 * eps);
    double tolerance =
        options.atol + options.rtol * std::max(std::fabs(numeric),
                                               std::fabs(analytic) * 1.0);
    EXPECT_NEAR(analytic, numeric, tolerance)
        << what << " (analytic=" << analytic << ", numeric=" << numeric
        << ")";
  };

  // Sampled input coordinates.
  int64_t n_input = std::min<int64_t>(options.samples_per_tensor, x.numel());
  for (int64_t s = 0; s < n_input; ++s) {
    int64_t idx = rng.UniformInt(0, x.numel() - 1);
    check_coordinate(&x.flat(idx), analytic_dx.flat(idx),
                     "input[" + std::to_string(idx) + "]");
  }

  // Sampled parameter coordinates.
  for (size_t p = 0; p < params.size(); ++p) {
    Tensor* value = params[p].value;
    int64_t n_param =
        std::min<int64_t>(options.samples_per_tensor, value->numel());
    for (int64_t s = 0; s < n_param; ++s) {
      int64_t idx = rng.UniformInt(0, value->numel() - 1);
      check_coordinate(&value->flat(idx), param_grads[p].flat(idx),
                       params[p].name + "[" + std::to_string(idx) + "]");
    }
  }
}

}  // namespace dhgcn::testing

#endif  // DHGCN_TESTS_GRADCHECK_H_
