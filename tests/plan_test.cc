// Execution-plan IR tests: record-once capture, liveness-packed offset
// aliasing, bit-exact unfused replay, Conv→BN / BN→Linear folding and
// elementwise fusion (rtol-equivalent, accuracy-parity), the PlanRunner
// zero-steady-state-allocation contract, and the eval-dropout identity
// fast path that keeps inference plans away from the RNG.

#include <cmath>
#include <cstring>
#include <memory>
#include <utility>

#include "gtest/gtest.h"

#include "base/alloc_stats.h"
#include "base/rng.h"
#include "base/thread_pool.h"
#include "core/dhgcn_model.h"
#include "data/dataloader.h"
#include "data/dataset.h"
#include "data/synthetic_generator.h"
#include "nn/batchnorm.h"
#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/sequential.h"
#include "plan/fusion.h"
#include "plan/plan.h"
#include "plan/plan_builder.h"
#include "plan/plan_runner.h"
#include "tensor/tensor_ops.h"
#include "tensor/workspace.h"
#include "train/evaluator.h"
#include "train/trainer.h"

namespace dhgcn {
namespace {

std::unique_ptr<DhgcnModel> MakeEvalTiny() {
  DhgcnConfig config =
      DhgcnConfig::Tiny(SkeletonLayoutType::kKinetics18, /*num_classes=*/4);
  auto model = std::make_unique<DhgcnModel>(config);
  model->SetTraining(false);
  return model;
}

int64_t CountKind(const ExecutionPlan& plan, PlanOpKind kind) {
  int64_t count = 0;
  for (const PlanOp& op : plan.ops) {
    if (op.kind == kind) ++count;
  }
  return count;
}

size_t SlotBytes(const PlanSlot& slot) {
  return static_cast<size_t>(ShapeNumel(slot.shape)) * sizeof(float);
}

TEST(PlanModeTest, ParseAndName) {
  EXPECT_EQ(ParsePlanMode("off").ValueOrDie(), PlanMode::kOff);
  EXPECT_EQ(ParsePlanMode("on").ValueOrDie(), PlanMode::kUnfused);
  EXPECT_EQ(ParsePlanMode("unfused").ValueOrDie(), PlanMode::kUnfused);
  EXPECT_EQ(ParsePlanMode("fused").ValueOrDie(), PlanMode::kFused);
  EXPECT_FALSE(ParsePlanMode("eager").ok());
  EXPECT_STREQ(PlanModeName(PlanMode::kFused), "fused");
}

TEST(PlanCaptureTest, RecordsTinyModelStructure) {
  std::unique_ptr<DhgcnModel> model = MakeEvalTiny();
  Result<ExecutionPlan> captured =
      CaptureInferencePlan(*model, {2, 3, 8, 18});
  ASSERT_TRUE(captured.ok()) << captured.status().ToString();
  const ExecutionPlan& plan = captured.ValueOrDie();
  EXPECT_FALSE(plan.resolved);
  EXPECT_GT(plan.ops.size(), 10u);
  ASSERT_GE(plan.input_slot, 0);
  ASSERT_GE(plan.output_slot, 0);
  EXPECT_EQ(plan.slots[static_cast<size_t>(plan.input_slot)].shape,
            (Shape{2, 3, 8, 18}));
  EXPECT_EQ(plan.slots[static_cast<size_t>(plan.output_slot)].shape,
            (Shape{2, 4}));
  // All three spatial branches are on in Tiny: the capture must carry
  // the opaque data-dependent operator constructions.
  EXPECT_EQ(CountKind(plan, PlanOpKind::kJointWeightOps), 1);
  EXPECT_EQ(CountKind(plan, PlanOpKind::kTopologyOps), 2);
  // One re-stride: Tiny's second block has temporal_stride=2.
  EXPECT_EQ(CountKind(plan, PlanOpKind::kStrideOps), 1);
  EXPECT_FALSE(plan.Summary().empty());
}

TEST(PlanCaptureTest, RequiresEvalMode) {
  DhgcnConfig config =
      DhgcnConfig::Tiny(SkeletonLayoutType::kKinetics18, /*num_classes=*/4);
  DhgcnModel model(config);  // still training
  Result<ExecutionPlan> captured =
      CaptureInferencePlan(model, {2, 3, 8, 18});
  EXPECT_FALSE(captured.ok());
}

TEST(PlanCaptureTest, BuildRejectsModeOff) {
  std::unique_ptr<DhgcnModel> model = MakeEvalTiny();
  EXPECT_FALSE(BuildInferencePlan(*model, {2, 3, 8, 18},
                                  PlanMode::kOff)
                   .ok());
}

TEST(PlanOffsetsTest, LivenessPackingAliasesSlots) {
  std::unique_ptr<DhgcnModel> model = MakeEvalTiny();
  ExecutionPlan plan =
      BuildInferencePlan(*model, {2, 3, 8, 18}, PlanMode::kUnfused)
          .ValueOrDie();
  ASSERT_TRUE(plan.resolved);
  size_t total = 0;
  for (const PlanSlot& slot : plan.slots) {
    if (slot.offset_bytes < 0) continue;  // dead slot
    size_t bytes = SlotBytes(slot);
    total += bytes;
    EXPECT_EQ(static_cast<size_t>(slot.offset_bytes) % 64, 0u)
        << "slot offset must stay 64-byte aligned";
    EXPECT_LE(static_cast<size_t>(slot.offset_bytes) + bytes,
              plan.arena_bytes);
  }
  // The whole point of liveness packing: the arena is (much) smaller
  // than the sum of slot footprints.
  EXPECT_LT(plan.arena_bytes, total);
  EXPECT_GT(plan.arena_bytes, 0u);
}

TEST(PlanRunnerTest, UnfusedReplayIsBitIdentical) {
  std::unique_ptr<DhgcnModel> model = MakeEvalTiny();
  Rng rng(31);
  Tensor x = Tensor::RandomNormal({2, 3, 8, 18}, rng);
  Tensor expected = model->Forward(x);

  PlanRunner runner(
      BuildInferencePlan(*model, x.shape(), PlanMode::kUnfused)
          .ValueOrDie());
  for (int repeat = 0; repeat < 3; ++repeat) {
    const Tensor& got = runner.Run(x);
    ASSERT_TRUE(ShapesEqual(got.shape(), expected.shape()));
    EXPECT_EQ(std::memcmp(got.data(), expected.data(),
                          static_cast<size_t>(expected.numel()) *
                              sizeof(float)),
              0)
        << "unfused replay diverged on repeat " << repeat;
  }
}

TEST(PlanRunnerTest, ZeroOwningAllocationsInSteadyState) {
  std::unique_ptr<DhgcnModel> model = MakeEvalTiny();
  Rng rng(32);
  Tensor x = Tensor::RandomNormal({2, 3, 8, 18}, rng);
  PlanRunner runner(
      BuildInferencePlan(*model, x.shape(), PlanMode::kUnfused)
          .ValueOrDie());
  runner.Run(x);  // warmup: scratch arena reaches its high-water mark
  for (int step = 0; step < 3; ++step) {
    AllocStatsGuard guard;
    runner.Run(x);
    EXPECT_EQ(guard.allocations(), 0u)
        << "steady-state Run allocated " << guard.allocations()
        << " owning tensors (" << guard.bytes() << " bytes) at step "
        << step;
  }
}

TEST(PlanRunnerTest, RejectsWrongInputShape) {
  std::unique_ptr<DhgcnModel> model = MakeEvalTiny();
  PlanRunner runner(
      BuildInferencePlan(*model, {2, 3, 8, 18}, PlanMode::kUnfused)
          .ValueOrDie());
  EXPECT_EQ(runner.input_shape(), (Shape{2, 3, 8, 18}));
  Rng rng(33);
  Tensor wrong = Tensor::RandomNormal({3, 3, 8, 18}, rng);
  EXPECT_DEATH(runner.Run(wrong), "DHGCN_CHECK");
}

TEST(PlanFusionTest, FoldsConvBnAndFusesElementwise) {
  std::unique_ptr<DhgcnModel> model = MakeEvalTiny();
  ExecutionPlan unfused =
      BuildInferencePlan(*model, {2, 3, 8, 18}, PlanMode::kUnfused)
          .ValueOrDie();
  ExecutionPlan fused =
      BuildInferencePlan(*model, {2, 3, 8, 18}, PlanMode::kFused)
          .ValueOrDie();
  // Each block's temporal conv feeds its BN directly: both blocks fold.
  EXPECT_EQ(CountKind(fused, PlanOpKind::kConv2dFolded), 2);
  // The spatial tail [BN, Accumulate, ReLU] fuses to kBnAddRelu, the
  // folded temporal tail [Accumulate, ReLU] to kAddRelu — per block.
  EXPECT_EQ(CountKind(fused, PlanOpKind::kBnAddRelu), 2);
  EXPECT_EQ(CountKind(fused, PlanOpKind::kAddRelu), 2);
  EXPECT_LT(fused.ops.size(), unfused.ops.size());

  Rng rng(34);
  Tensor x = Tensor::RandomNormal({2, 3, 8, 18}, rng);
  PlanRunner unfused_runner(std::move(unfused));
  PlanRunner fused_runner(std::move(fused));
  const Tensor& baseline = unfused_runner.Run(x);
  const Tensor& rewritten = fused_runner.Run(x);
  // Folding re-associates float math: rtol-equivalent, not bit-exact.
  EXPECT_TRUE(AllClose(baseline, rewritten, /*rtol=*/1e-4f,
                       /*atol=*/1e-5f));
}

TEST(PlanFusionTest, FoldsBnIntoLinear) {
  Rng rng(35);
  Sequential seq;
  BatchNorm2d* bn = seq.Emplace<BatchNorm2d>(6);
  seq.Emplace<Linear>(6, 3, rng);
  // Non-trivial eval statistics so the fold actually rescales.
  bn->gamma() = Tensor::RandomUniform({6}, rng, 0.5f, 1.5f);
  bn->beta() = Tensor::RandomNormal({6}, rng);
  seq.SetTraining(true);
  Tensor warm = Tensor::RandomNormal({16, 6}, rng);
  seq.Forward(warm);  // advance the running statistics off their init
  seq.SetTraining(false);

  ExecutionPlan fused =
      BuildInferencePlan(seq, {5, 6}, PlanMode::kFused).ValueOrDie();
  EXPECT_EQ(fused.ops.size(), 1u);
  EXPECT_EQ(fused.ops[0].kind, PlanOpKind::kLinearFolded);

  Tensor x = Tensor::RandomNormal({5, 6}, rng);
  Tensor expected = seq.Forward(x);
  PlanRunner runner(std::move(fused));
  EXPECT_TRUE(AllClose(expected, runner.Run(x), /*rtol=*/1e-4f,
                       /*atol=*/1e-5f));
}

// Accuracy parity on a trained model: the fused plan must agree with
// the layer path within 0.1% top-1 over a full evaluation pass (the
// folding acceptance bound; in practice predictions match exactly on
// this scale).
TEST(PlanFusionTest, BnFoldAccuracyParity) {
  SyntheticDataConfig data_config = NtuLikeConfig(2, 6, 8, 91);
  SkeletonDataset dataset =
      SkeletonDataset::Generate(data_config).MoveValue();
  DatasetSplit split = dataset.RandomSplit(0.4f, 3);
  DhgcnConfig config =
      DhgcnConfig::Tiny(SkeletonLayoutType::kNtu25, /*num_classes=*/2);
  DhgcnModel model(config);
  {
    DataLoader loader(&dataset, split.train, 4, InputStream::kJoint,
                      /*shuffle=*/true, Rng(9));
    TrainOptions options;
    options.epochs = 2;
    options.initial_lr = 0.01f;
    Trainer trainer(&model, options);
    ASSERT_TRUE(trainer.Train(loader).ok());
  }
  DataLoader eval_loader(&dataset, split.test, 4, InputStream::kJoint,
                         /*shuffle=*/false);
  EvalMetrics layerwise = Evaluate(model, eval_loader);
  EvalOptions fused_options;
  fused_options.plan = PlanMode::kFused;
  EvalMetrics fused = Evaluate(model, eval_loader, fused_options);
  EXPECT_EQ(layerwise.count, fused.count);
  EXPECT_NEAR(layerwise.top1, fused.top1, 1e-3);
  EXPECT_NEAR(layerwise.loss, fused.loss, 1e-4);
}

TEST(PlanEvaluateTest, UnfusedPlanMatchesLayerPathExactly) {
  SyntheticDataConfig data_config = NtuLikeConfig(3, 4, 8, 92);
  SkeletonDataset dataset =
      SkeletonDataset::Generate(data_config).MoveValue();
  DatasetSplit split = dataset.RandomSplit(0.5f, 1);
  DhgcnConfig config =
      DhgcnConfig::Tiny(SkeletonLayoutType::kNtu25, /*num_classes=*/3);
  DhgcnModel model(config);
  model.SetTraining(false);
  // Batch 5 over 6 samples: exercises the per-batch-size runner cache
  // (a full batch and a tail batch compile separate plans).
  DataLoader loader(&dataset, split.test, 5, InputStream::kJoint,
                    /*shuffle=*/false);
  EvalMetrics layerwise = Evaluate(model, loader);
  EvalOptions plan_options;
  plan_options.plan = PlanMode::kUnfused;
  EvalMetrics planned = Evaluate(model, loader, plan_options);
  EXPECT_EQ(layerwise.count, planned.count);
  EXPECT_EQ(layerwise.top1, planned.top1);
  EXPECT_EQ(layerwise.top5, planned.top5);
  EXPECT_EQ(layerwise.loss, planned.loss);
}

TEST(DropoutEvalTest, IdentityFastPathSkipsMaskAllocAndRng) {
  Rng rng_a(40);
  Rng rng_b(40);
  Dropout warmed(0.5f, rng_a);
  Dropout fresh(0.5f, rng_b);
  Rng data_rng(41);
  Tensor x = Tensor::RandomNormal({4, 8}, data_rng);

  warmed.SetTraining(false);
  for (int i = 0; i < 3; ++i) {
    AllocStatsGuard guard;
    Tensor y = warmed.Forward(x);
    EXPECT_TRUE(y.SharesStorageWith(x)) << "eval dropout must be identity";
    EXPECT_EQ(guard.allocations(), 0u)
        << "eval dropout must not allocate a mask";
  }

  // Same seed, same first training-mode mask — eval forwards on
  // `warmed` never advanced its RNG stream.
  warmed.SetTraining(true);
  fresh.SetTraining(true);
  Tensor from_warmed = warmed.Forward(x);
  Tensor from_fresh = fresh.Forward(x);
  EXPECT_EQ(std::memcmp(from_warmed.data(), from_fresh.data(),
                        static_cast<size_t>(x.numel()) * sizeof(float)),
            0);
}

TEST(WorkspacePeakTest, PeakBytesTracksHighWaterAcrossResets) {
  Workspace ws;
  EXPECT_EQ(ws.PeakBytes(), 0u);
  { Tensor big = NewTensor(&ws, {1024}); }
  size_t peak = ws.PeakBytes();
  EXPECT_GE(peak, 1024 * sizeof(float));
  ws.Reset();
  { Tensor small = NewTensor(&ws, {8}); }
  EXPECT_EQ(ws.PeakBytes(), peak) << "peak must survive Reset";
}

}  // namespace
}  // namespace dhgcn
