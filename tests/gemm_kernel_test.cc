// Equivalence suite for the cache-blocked GEMM micro-kernel
// (tensor/gemm_kernel.h) and the lowerings that ride it. The blocked
// kernel uses a different — still shape-pure — accumulation order than
// the retained reference row kernel, so these tests bound the float
// drift with relative tolerances instead of bit comparison; the
// bit-level guarantees (across thread counts) live in
// parallel_determinism_test.cc.

#include <cmath>
#include <vector>

#include "gtest/gtest.h"

#include "base/rng.h"
#include "gradcheck.h"
#include "hypergraph/knn.h"
#include "nn/conv2d.h"
#include "tensor/gemm_kernel.h"
#include "tensor/linalg.h"
#include "tensor/workspace.h"

namespace dhgcn {
namespace {

// rtol sized for float accumulation over k <= a few hundred terms; atol
// absorbs catastrophic cancellation near zero.
constexpr float kRtol = 1e-4f;
constexpr float kAtol = 1e-5f;

void ExpectAllClose(const Tensor& expected, const Tensor& actual,
                    const char* what) {
  ASSERT_TRUE(ShapesEqual(expected.shape(), actual.shape())) << what;
  for (int64_t i = 0; i < expected.numel(); ++i) {
    const float e = expected.flat(i);
    const float a = actual.flat(i);
    ASSERT_NEAR(e, a, kAtol + kRtol * std::fabs(e))
        << what << " at flat index " << i;
  }
}

// Reference product via the retained zero-skipping row kernel, the
// implementation the blocked kernel is specified against.
Tensor ReferenceMatMul(const Tensor& a, const Tensor& b) {
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c = Tensor::Zeros({m, n});
  detail::GemmReferenceAccumulate(a.data(), b.data(), c.data(), m, k, n);
  return c;
}

// Shapes chosen to straddle every tiling boundary: micro-tile exact
// multiples, one-off remainders, sub-tile sizes, primes, k crossing the
// kGemmKC block edge, and n crossing the packed-panel edge.
struct GemmShape {
  int64_t m, k, n;
};

const GemmShape kShapes[] = {
    {detail::kGemmMR, 8, detail::kGemmNR},            // exactly one tile
    {detail::kGemmMR * 3, 64, detail::kGemmNR * 2},   // tile multiples
    {detail::kGemmMR + 1, 37, detail::kGemmNR + 1},   // one-off remainders
    {61, 67, 53},                                     // all prime
    {5, detail::kGemmKC + 7, 19},                     // k straddles KC
    {48, 300, detail::kGemmNR / 2},                   // below-threshold n
    {128, 128, 128},                                  // square, blocked
    {3, 500, 9},                                      // too small to block
};

TEST(GemmKernel, MatchesReferenceKernel) {
  for (const GemmShape& s : kShapes) {
    Rng rng(300 + s.m + s.k + s.n);
    Tensor a = Tensor::RandomNormal({s.m, s.k}, rng);
    Tensor b = Tensor::RandomNormal({s.k, s.n}, rng);
    Tensor got = MatMul(a, b);
    ExpectAllClose(ReferenceMatMul(a, b), got, "MatMul vs reference");
  }
}

TEST(GemmKernel, AccumulateMatchesReferenceKernel) {
  for (const GemmShape& s : kShapes) {
    Rng rng(400 + s.m + s.k + s.n);
    Tensor a = Tensor::RandomNormal({s.m, s.k}, rng);
    Tensor b = Tensor::RandomNormal({s.k, s.n}, rng);
    Tensor init = Tensor::RandomNormal({s.m, s.n}, rng);

    Tensor want = init.Clone();
    detail::GemmReferenceAccumulate(a.data(), b.data(), want.data(), s.m,
                                    s.k, s.n);
    Tensor got = init.Clone();
    MatMulInto(a, b, &got, /*accumulate=*/true);
    ExpectAllClose(want, got, "accumulating MatMulInto vs reference");
  }
}

TEST(GemmKernel, SparseHintMatchesDense) {
  Rng rng(500);
  // Incidence-like operand: mostly zeros, as the hint is documented for.
  Tensor a = Tensor::Zeros({40, 60});
  for (int64_t i = 0; i < a.numel(); ++i) {
    if (rng.Bernoulli(0.1f)) a.flat(i) = rng.Normal();
  }
  Tensor b = Tensor::RandomNormal({60, 48}, rng);
  Tensor dense(Shape{40, 48}), sparse(Shape{40, 48});
  MatMulInto(a, b, &dense, /*accumulate=*/false, GemmHint::kDense);
  MatMulInto(a, b, &sparse, /*accumulate=*/false, GemmHint::kSparse);
  ExpectAllClose(sparse, dense, "kDense vs kSparse hint");
}

TEST(GemmKernel, PackBRoundTrip) {
  const int64_t k = 7, n = detail::kGemmNR + 5;  // forces a padded panel
  Rng rng(501);
  Tensor b = Tensor::RandomNormal({k, n}, rng);
  std::vector<float> bp(
      static_cast<size_t>(detail::GemmPackedBCount(k, n)), -1.0f);
  detail::GemmPackB(b.data(), k, n, bp.data());
  const int64_t panels = (n + detail::kGemmNR - 1) / detail::kGemmNR;
  for (int64_t panel = 0; panel < panels; ++panel) {
    for (int64_t p = 0; p < k; ++p) {
      for (int64_t j = 0; j < detail::kGemmNR; ++j) {
        const int64_t col = panel * detail::kGemmNR + j;
        const float want = col < n ? b.data()[p * n + col] : 0.0f;
        ASSERT_EQ(bp[static_cast<size_t>((panel * k + p) * detail::kGemmNR +
                                         j)],
                  want)
            << "panel=" << panel << " p=" << p << " j=" << j;
      }
    }
  }
}

TEST(GemmKernel, PackTransposedIsExactTranspose) {
  const int64_t k = 37, m = 41;  // straddles the 32x32 transpose tile
  Rng rng(502);
  Tensor a = Tensor::RandomNormal({k, m}, rng);
  std::vector<float> at(static_cast<size_t>(k * m));
  detail::GemmPackTransposed(a.data(), k, m, at.data());
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      ASSERT_EQ(at[static_cast<size_t>(i * k + p)], a.data()[p * m + i]);
    }
  }
}

TEST(GemmKernel, TransposedAMatchesReference) {
  // MatMulTransposedA routes through the pack-transpose + blocked kernel
  // at blocked shapes; compare against the reference product on
  // materialized a^T.
  Rng rng(503);
  Tensor a = Tensor::RandomNormal({70, 45}, rng);  // (K,M)
  Tensor b = Tensor::RandomNormal({70, 33}, rng);  // (K,N)
  Tensor at({45, 70});
  for (int64_t p = 0; p < 70; ++p) {
    for (int64_t i = 0; i < 45; ++i) {
      at.data()[i * 70 + p] = a.data()[p * 45 + i];
    }
  }
  ExpectAllClose(ReferenceMatMul(at, b), MatMulTransposedA(a, b),
                 "MatMulTransposedA vs reference");
}

TEST(GemmKernel, BatchedSharedBMatchesReference) {
  Rng rng(504);
  Tensor a = Tensor::RandomNormal({3, 48, 32}, rng);
  Tensor b = Tensor::RandomNormal({32, 40}, rng);
  Tensor got = BatchedMatMul(a, b);
  for (int64_t bi = 0; bi < 3; ++bi) {
    Tensor ai({48, 32});
    for (int64_t i = 0; i < ai.numel(); ++i) {
      ai.flat(i) = a.data()[bi * 48 * 32 + i];
    }
    Tensor want = ReferenceMatMul(ai, b);
    for (int64_t i = 0; i < want.numel(); ++i) {
      ASSERT_NEAR(want.flat(i), got.data()[bi * 48 * 40 + i],
                  kAtol + kRtol * std::fabs(want.flat(i)))
          << "batch " << bi << " flat " << i;
    }
  }
}

// --- Conv2d im2col lowering vs the direct loop nest ----------------------

// Toggles the process-wide lowering flag and restores it on scope exit so
// a failing ASSERT cannot leak the direct path into later tests.
class Im2colGuard {
 public:
  explicit Im2colGuard(bool use) { Conv2d::SetUseIm2col(use); }
  ~Im2colGuard() { Conv2d::SetUseIm2col(true); }
};

struct ConvCase {
  const char* name;
  Conv2dOptions options;
  int64_t in_channels, out_channels;
  Shape x_shape;
};

std::vector<ConvCase> ConvCases() {
  std::vector<ConvCase> cases;
  {
    ConvCase c{"3x3 pad1", {}, 5, 7, {2, 5, 9, 8}};
    c.options.kernel_h = 3;
    c.options.kernel_w = 3;
    c.options.pad_h = 1;
    c.options.pad_w = 1;
    cases.push_back(c);
  }
  {
    // DHGCN temporal shape: tall kernel, dilation and stride on the
    // time axis, joints untouched.
    ConvCase c{"9x1 dilated strided", {}, 4, 6, {2, 4, 20, 7}};
    c.options.kernel_h = 9;
    c.options.pad_h = 8;
    c.options.dilation_h = 2;
    c.options.stride_h = 2;
    cases.push_back(c);
  }
  {
    ConvCase c{"2x2 no pad, no bias", {}, 3, 4, {1, 3, 6, 5}};
    c.options.kernel_h = 2;
    c.options.kernel_w = 2;
    c.options.has_bias = false;
    cases.push_back(c);
  }
  return cases;
}

TEST(Conv2dIm2col, ForwardBackwardMatchDirect) {
  for (const ConvCase& cc : ConvCases()) {
    Rng rng(600);
    Conv2d conv(cc.in_channels, cc.out_channels, cc.options, rng);
    Tensor x = Tensor::RandomNormal(cc.x_shape, rng);

    Tensor direct_out, direct_gi, direct_wg, direct_bg;
    {
      Im2colGuard guard(false);
      direct_out = conv.Forward(x);
      Tensor g = Tensor::Ones(direct_out.shape());
      conv.ZeroGrad();
      direct_gi = conv.Backward(g);
      direct_wg = conv.Params()[0].grad->Clone();
      if (cc.options.has_bias) direct_bg = conv.Params()[1].grad->Clone();
    }

    Im2colGuard guard(true);
    Tensor out = conv.Forward(x);
    ExpectAllClose(direct_out, out, cc.name);
    Tensor g = Tensor::Ones(out.shape());
    conv.ZeroGrad();
    Tensor gi = conv.Backward(g);
    ExpectAllClose(direct_gi, gi, cc.name);
    ExpectAllClose(direct_wg, *conv.Params()[0].grad, cc.name);
    if (cc.options.has_bias) {
      ExpectAllClose(direct_bg, *conv.Params()[1].grad, cc.name);
    }
  }
}

TEST(Conv2dIm2col, GradcheckThroughIm2colLowering) {
  ASSERT_TRUE(Conv2d::use_im2col());
  Conv2dOptions options;
  options.kernel_h = 3;
  options.kernel_w = 3;
  options.pad_h = 1;
  options.pad_w = 1;
  options.stride_h = 2;
  Rng rng(601);
  Conv2d conv(3, 5, options, rng);
  Tensor x = Tensor::RandomNormal({2, 3, 8, 6}, rng);
  testing::ExpectGradientsMatch(conv, x);
}

// --- PairwiseDistances GEMM formulation ---------------------------------

TEST(PairwiseDistancesGemm, MatchesNaiveDifferences) {
  Rng rng(602);
  const int64_t v = 37, f = 11;
  Tensor features = Tensor::RandomNormal({v, f}, rng);
  Tensor dist = PairwiseDistances(features);
  const float* px = features.data();
  for (int64_t i = 0; i < v; ++i) {
    for (int64_t j = 0; j < v; ++j) {
      double acc = 0.0;
      for (int64_t c = 0; c < f; ++c) {
        const double d = static_cast<double>(px[i * f + c]) -
                         static_cast<double>(px[j * f + c]);
        acc += d * d;
      }
      const float want = static_cast<float>(std::sqrt(acc));
      EXPECT_NEAR(dist.data()[i * v + j], want, 1e-3f + 1e-3f * want)
          << "(" << i << ", " << j << ")";
    }
  }
}

TEST(PairwiseDistancesGemm, ExactlySymmetricWithZeroDiagonal) {
  Rng rng(603);
  const int64_t v = 50;
  Tensor features = Tensor::RandomNormal({v, 8}, rng);
  Tensor dist = PairwiseDistances(features);
  const float* pd = dist.data();
  for (int64_t i = 0; i < v; ++i) {
    EXPECT_EQ(pd[i * v + i], 0.0f) << "diagonal " << i;
    for (int64_t j = 0; j < i; ++j) {
      EXPECT_EQ(pd[i * v + j], pd[j * v + i])
          << "asymmetric at (" << i << ", " << j << ")";
    }
  }
}

// Near-duplicate rows exercise the max(., 0) clamp: cancellation in
// Gii + Gjj - 2 Gij can leave a tiny negative residual that would
// otherwise produce NaN under sqrt.
TEST(PairwiseDistancesGemm, NearDuplicateRowsStayFinite) {
  Rng rng(604);
  Tensor features = Tensor::RandomNormal({12, 16}, rng, 0.0f, 100.0f);
  for (int64_t c = 0; c < 16; ++c) {
    features.data()[1 * 16 + c] = features.data()[0 * 16 + c];
    features.data()[2 * 16 + c] =
        features.data()[0 * 16 + c] * (1.0f + 1e-7f);
  }
  Tensor dist = PairwiseDistances(features);
  for (int64_t i = 0; i < dist.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(dist.flat(i))) << "flat " << i;
    ASSERT_GE(dist.flat(i), 0.0f) << "flat " << i;
  }
}

}  // namespace
}  // namespace dhgcn
