// Edge-case and regression tests that cut across modules.

#include <sstream>

#include "gtest/gtest.h"

#include "base/rng.h"
#include "base/status.h"
#include "data/dataloader.h"
#include "data/dataset.h"
#include "nn/conv2d.h"
#include "nn/loss.h"
#include "tensor/tensor_ops.h"

namespace dhgcn {
namespace {

TEST(StatusStreamTest, StreamOperatorPrintsToString) {
  std::ostringstream oss;
  oss << Status::NotFound("thing");
  EXPECT_EQ(oss.str(), "NotFound: thing");
}

TEST(TensorEdgeTest, SingleElementReductions) {
  Tensor t = Tensor::Scalar(5.0f).Reshape({1, 1});
  EXPECT_FLOAT_EQ(ReduceSum(t, 0).flat(0), 5.0f);
  EXPECT_FLOAT_EQ(ReduceMean(t, 1).flat(0), 5.0f);
  EXPECT_FLOAT_EQ(ArgMax(t, 1).flat(0), 0.0f);
}

TEST(TensorEdgeTest, SoftmaxOfSingleClassIsOne) {
  Tensor t = Tensor::FromVector({2, 1}, {3.0f, -5.0f});
  Tensor p = Softmax(t, 1);
  EXPECT_FLOAT_EQ(p.flat(0), 1.0f);
  EXPECT_FLOAT_EQ(p.flat(1), 1.0f);
}

TEST(TensorEdgeTest, ConcatSingleTensorIsCopy) {
  Tensor a = Tensor::Arange(6).Reshape({2, 3});
  Tensor c = Concat({a}, 1);
  EXPECT_TRUE(AllClose(c, a));
  EXPECT_FALSE(c.SharesStorageWith(a));
}

TEST(TensorEdgeTest, SliceZeroLength) {
  Tensor a = Tensor::Arange(6).Reshape({2, 3});
  Tensor s = Slice(a, 1, 1, 0);
  EXPECT_EQ(s.shape(), (Shape{2, 0}));
  EXPECT_EQ(s.numel(), 0);
}

TEST(ConvEdgeTest, BatchSizeOneAndSingleFrame) {
  Rng rng(1);
  Conv2dOptions options;  // 1x1
  Conv2d conv(3, 2, options, rng);
  Tensor x = Tensor::RandomNormal({1, 3, 1, 5}, rng);
  Tensor y = conv.Forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 2, 1, 5}));
  Tensor g = conv.Backward(Tensor::Ones(y.shape()));
  EXPECT_EQ(g.shape(), x.shape());
}

TEST(LossEdgeTest, SingleSampleBatch) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 2});
  logits.at(0, 0) = 1.0f;
  float value = loss.Forward(logits, {0});
  EXPECT_GT(value, 0.0f);
  Tensor grad = loss.Backward();
  EXPECT_EQ(grad.shape(), (Shape{1, 2}));
}

TEST(DataLoaderEdgeTest, SingleSampleDataset) {
  SyntheticDataConfig config = NtuLikeConfig(1, 1, 8, 5);
  SkeletonDataset dataset = SkeletonDataset::Generate(config).MoveValue();
  DataLoader loader(&dataset, {0}, 4, InputStream::kJoint, true, Rng(1));
  EXPECT_EQ(loader.NumBatches(), 1);
  for (int epoch = 0; epoch < 3; ++epoch) {
    loader.StartEpoch();
    Batch batch = loader.GetBatch(0);
    EXPECT_EQ(batch.x.dim(0), 1);
  }
}

TEST(DataLoaderEdgeTest, BatchLargerThanDataset) {
  SyntheticDataConfig config = NtuLikeConfig(2, 2, 8, 6);
  SkeletonDataset dataset = SkeletonDataset::Generate(config).MoveValue();
  std::vector<int64_t> all = {0, 1, 2, 3};
  DataLoader loader(&dataset, all, 100, InputStream::kBone, false);
  EXPECT_EQ(loader.NumBatches(), 1);
  EXPECT_EQ(loader.GetBatch(0).x.dim(0), 4);
}

TEST(DatasetEdgeTest, SingleCameraCrossViewHasEmptyTrain) {
  // Degenerate protocol request: all samples from the test camera. The
  // split is returned as-is; the experiment helpers CHECK non-emptiness
  // before training.
  SyntheticDataConfig config = KineticsLikeConfig(2, 3, 8, 7);
  SkeletonDataset dataset = SkeletonDataset::Generate(config).MoveValue();
  DatasetSplit split = dataset.CrossViewSplit(0);
  EXPECT_TRUE(split.train.empty());
  EXPECT_EQ(split.test.size(), 6u);
}

TEST(RngEdgeTest, UniformIntSingleValue) {
  Rng rng(8);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(3, 3), 3);
}

}  // namespace
}  // namespace dhgcn
