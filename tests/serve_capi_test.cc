// Exercises the flat-C serving ABI end to end: open, introspect, infer,
// classified error codes, last_error, close. The C surface must match
// the C++ server bit for bit.

#include "serve/serve_c_api.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "base/rng.h"
#include "serve/server.h"

namespace dhgcn {
namespace {

constexpr int64_t kFrames = 8;

TEST(ServeCApiTest, OpenRejectsBadArgumentsWithMessage) {
  char err[256] = {0};
  dhgcn_serve_server* server = dhgcn_serve_open(
      nullptr, "nonsense", "ntu", 4, kFrames, 0, 0, 0, err, sizeof(err));
  EXPECT_EQ(server, nullptr);
  EXPECT_NE(std::string(err).find("nonsense"), std::string::npos);

  err[0] = '\0';
  server = dhgcn_serve_open(nullptr, "tiny", "klingon", 4, kFrames, 0, 0,
                            0, err, sizeof(err));
  EXPECT_EQ(server, nullptr);
  EXPECT_NE(std::string(err).find("klingon"), std::string::npos);

  // Corrupt checkpoint path: the v2 loader's Status surfaces here.
  err[0] = '\0';
  server = dhgcn_serve_open("/nonexistent/weights.ckpt", "tiny", "ntu", 4,
                            kFrames, 0, 0, 0, err, sizeof(err));
  EXPECT_EQ(server, nullptr);
  EXPECT_GT(std::string(err).size(), 0u);
}

TEST(ServeCApiTest, InferMatchesCppServer) {
  char err[256] = {0};
  dhgcn_serve_server* server = dhgcn_serve_open(
      nullptr, "tiny", "ntu", 4, kFrames, 1, 0, 0, err, sizeof(err));
  ASSERT_NE(server, nullptr) << err;

  int64_t clip_len = dhgcn_serve_clip_len(server);
  int64_t classes = dhgcn_serve_num_classes(server);
  EXPECT_EQ(classes, 4);
  ASSERT_GT(clip_len, 0);

  Rng rng(21);
  std::vector<float> clip(static_cast<size_t>(clip_len));
  for (float& v : clip) v = rng.Normal();
  std::vector<float> logits(static_cast<size_t>(classes), 0.0f);
  int rc = dhgcn_serve_infer(server, clip.data(), clip_len,
                             /*deadline_ms=*/2'000, logits.data(),
                             classes);
  ASSERT_EQ(rc, DHGCN_SERVE_OK) << dhgcn_serve_last_error(server);

  // Reference: the same config/seed through the C++ interface.
  DhgcnConfig config =
      DhgcnConfig::Tiny(SkeletonLayoutType::kNtu25, /*num_classes=*/4);
  auto reference =
      InferenceServer::Create("", config, kFrames, ServerOptions());
  ASSERT_TRUE(reference.ok());
  Tensor input({config.in_channels, kFrames,
                (*reference)->model().num_joints()});
  for (int64_t i = 0; i < input.numel(); ++i) {
    input.flat(i) = clip[static_cast<size_t>(i)];
  }
  // Same generous deadline as the C call: sanitizer builds slow the
  // forward enough to blow the server default otherwise.
  SubmitOptions reference_opts;
  reference_opts.deadline_ns = 10'000'000'000;
  ServeResponse expected = (*reference)->Infer(input, reference_opts);

  // Close before asserting so a failure can't leak the C handle.
  int health = dhgcn_serve_health_state(server);
  dhgcn_serve_close(server);
  ASSERT_TRUE(expected.status.ok()) << expected.status.ToString();
  for (int64_t c = 0; c < classes; ++c) {
    EXPECT_EQ(logits[static_cast<size_t>(c)], expected.logits.flat(c));
  }
  EXPECT_EQ(health, DHGCN_SERVE_HEALTH_READY);
}

TEST(ServeCApiTest, ClassifiesErrorsAcrossTheBoundary) {
  char err[256] = {0};
  dhgcn_serve_server* server = dhgcn_serve_open(
      nullptr, "tiny", "ntu", 4, kFrames, 1, 0, 0, err, sizeof(err));
  ASSERT_NE(server, nullptr) << err;
  int64_t clip_len = dhgcn_serve_clip_len(server);
  int64_t classes = dhgcn_serve_num_classes(server);
  std::vector<float> clip(static_cast<size_t>(clip_len), 0.5f);
  std::vector<float> logits(static_cast<size_t>(classes), 0.0f);

  // Wrong clip length.
  EXPECT_EQ(dhgcn_serve_infer(server, clip.data(), clip_len - 1, 0,
                              logits.data(), classes),
            DHGCN_SERVE_INVALID_ARGUMENT);
  EXPECT_GT(std::string(dhgcn_serve_last_error(server)).size(), 0u);

  // Undersized logits buffer.
  EXPECT_EQ(dhgcn_serve_infer(server, clip.data(), clip_len, 0,
                              logits.data(), classes - 1),
            DHGCN_SERVE_INVALID_ARGUMENT);

  // Quarantined input: NaN fails with INVALID_ARGUMENT, not a crash.
  clip[3] = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(dhgcn_serve_infer(server, clip.data(), clip_len, 2'000,
                              logits.data(), classes),
            DHGCN_SERVE_INVALID_ARGUMENT);
  clip[3] = 0.5f;

  // Null handles are inert.
  EXPECT_EQ(dhgcn_serve_clip_len(nullptr), 0);
  EXPECT_EQ(dhgcn_serve_infer(nullptr, clip.data(), clip_len, 0,
                              logits.data(), classes),
            DHGCN_SERVE_INVALID_ARGUMENT);
  EXPECT_NE(dhgcn_serve_last_error(nullptr), nullptr);
  dhgcn_serve_close(nullptr);

  dhgcn_serve_close(server);
}

}  // namespace
}  // namespace dhgcn
