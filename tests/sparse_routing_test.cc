// Sparse conformance layer for the density-adaptive execution path.
//
// The contract under test: every operator the SparseRouter can route
// through the CSR kernels produces *bit-identical* results to its dense
// counterpart — skipped zero products are exact float/double no-ops and
// the accumulation order is preserved — so flipping the router mode
// (off / on) must never change a single output bit, at any density,
// including fully dense operands forced through the sparse path. The
// blocked GEMM uses a different accumulation order and is compared with
// tolerances instead.

#include <cmath>
#include <cstring>
#include <tuple>
#include <vector>

#include "gtest/gtest.h"

#include "base/rng.h"
#include "core/dhgcn_model.h"
#include "data/dataloader.h"
#include "data/dataset.h"
#include "data/synthetic_generator.h"
#include "hypergraph/hypergraph.h"
#include "hypergraph/hypergraph_conv.h"
#include "nn/linear.h"
#include "plan/plan_builder.h"
#include "plan/plan_runner.h"
#include "tensor/linalg.h"
#include "tensor/sparse.h"
#include "tensor/sparse_router.h"
#include "tensor/tensor_ops.h"
#include "tests/gradcheck.h"
#include "train/evaluator.h"
#include "train/experiment.h"
#include "train/pruner.h"
#include "train/trainer.h"

namespace dhgcn {
namespace {

// The router is a process-wide singleton shared by every test in the
// binary: always save/restore both knobs.
class ScopedSparseMode {
 public:
  explicit ScopedSparseMode(SparseMode mode,
                            double threshold = -1.0)
      : saved_mode_(SparseRouter::Get().mode()),
        saved_threshold_(SparseRouter::Get().density_threshold()) {
    SparseRouter::Get().set_mode(mode);
    if (threshold > 0.0) {
      SparseRouter::Get().set_density_threshold(threshold);
    }
  }
  ~ScopedSparseMode() {
    SparseRouter::Get().set_mode(saved_mode_);
    SparseRouter::Get().set_density_threshold(saved_threshold_);
  }

 private:
  SparseMode saved_mode_;
  double saved_threshold_;
};

void ExpectBitEqual(const Tensor& expected, const Tensor& actual,
                    const char* what) {
  ASSERT_EQ(expected.shape(), actual.shape()) << what;
  EXPECT_EQ(std::memcmp(expected.data(), actual.data(),
                        sizeof(float) * expected.numel()),
            0)
      << what << ": sparse path is not bit-identical to the dense path";
}

// Random normal tensor with an expected fraction `density` of nonzeros.
Tensor RandomAtDensity(const Shape& shape, double density, Rng& rng) {
  Tensor t = Tensor::RandomNormal(shape, rng);
  for (int64_t i = 0; i < t.numel(); ++i) {
    if (rng.Uniform() >= static_cast<float>(density)) t.flat(i) = 0.0f;
  }
  return t;
}

// --- Kernel conformance: SpMM family vs the dense reference kernels ---
//
// Shapes deliberately include primes (61, 67, 37, 17) and sizes that
// straddle the blocked-GEMM tiles, plus the degenerate 1x1x1.

using Dims = std::tuple<int64_t, int64_t, int64_t>;
using KernelParam = std::tuple<Dims, double>;

class SpmmConformanceTest : public ::testing::TestWithParam<KernelParam> {
};

TEST_P(SpmmConformanceTest, SpMMIntoBitwiseMatchesSparseReference) {
  auto [dims, density] = GetParam();
  auto [m, k, n] = dims;
  Rng rng(101);
  Tensor a = RandomAtDensity({m, k}, density, rng);
  Tensor b = Tensor::RandomNormal({k, n}, rng);
  CsrMatrix a_csr = CsrMatrix::FromDense(a);

  Tensor ref({m, n});
  MatMulInto(a, b, &ref, /*accumulate=*/false, GemmHint::kSparse);
  Tensor c({m, n});
  SpMMInto(a_csr, b, &c);
  ExpectBitEqual(ref, c, "SpMMInto");

  // Accumulating variant, on identical pre-filled outputs.
  Tensor base = Tensor::RandomNormal({m, n}, rng);
  Tensor ref_acc = base.Clone();
  Tensor c_acc = base.Clone();
  MatMulInto(a, b, &ref_acc, /*accumulate=*/true, GemmHint::kSparse);
  SpMMAccumulateInto(a_csr, b, &c_acc);
  ExpectBitEqual(ref_acc, c_acc, "SpMMAccumulateInto");

  // The blocked GEMM accumulates in a different order: rtol-equivalent.
  EXPECT_TRUE(AllClose(MatMul(a, b), c, 1e-4f, 1e-5f));
}

TEST_P(SpmmConformanceTest, DenseSpMMIntoBitwiseMatchesSparseReference) {
  auto [dims, density] = GetParam();
  auto [m, k, n] = dims;
  Rng rng(102);
  Tensor a = RandomAtDensity({m, k}, density, rng);
  Tensor b = RandomAtDensity({k, n}, density, rng);
  CsrMatrix b_csr = CsrMatrix::FromDense(b);

  Tensor ref({m, n});
  MatMulInto(a, b, &ref, /*accumulate=*/false, GemmHint::kSparse);
  Tensor c({m, n});
  DenseSpMMInto(a, b_csr, &c);
  ExpectBitEqual(ref, c, "DenseSpMMInto");

  Tensor base = Tensor::RandomNormal({m, n}, rng);
  Tensor ref_acc = base.Clone();
  Tensor c_acc = base.Clone();
  MatMulInto(a, b, &ref_acc, /*accumulate=*/true, GemmHint::kSparse);
  DenseSpMMInto(a, b_csr, &c_acc, /*accumulate=*/true);
  ExpectBitEqual(ref_acc, c_acc, "DenseSpMMInto accumulate");
}

TEST_P(SpmmConformanceTest, SpMMTransposedBBitwiseMatchesDense) {
  auto [dims, density] = GetParam();
  auto [m, k, n] = dims;
  Rng rng(103);
  Tensor a = Tensor::RandomNormal({m, k}, rng);
  Tensor b = RandomAtDensity({n, k}, density, rng);
  CsrMatrix b_csr = CsrMatrix::FromDense(b);

  Tensor ref({m, n});
  MatMulTransposedBInto(a, b, &ref);
  Tensor c({m, n});
  SpMMTransposedBInto(a, b_csr, &c);
  ExpectBitEqual(ref, c, "SpMMTransposedBInto");
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndDensities, SpmmConformanceTest,
    ::testing::Combine(::testing::Values(Dims{5, 7, 3}, Dims{61, 67, 37},
                                         Dims{33, 64, 17}, Dims{1, 1, 1},
                                         Dims{17, 16, 16}),
                       ::testing::Values(0.01, 0.1, 0.5, 1.0)));

// --- CSR in-place rebuild (the steady-state compression path) ---------

TEST(CsrAssignFromDense, MatchesFromDenseAfterCapacityReuse) {
  Rng rng(104);
  CsrMatrix csr(1, 1);
  // Dense -> sparse -> dense again: each rebuild must be equivalent to a
  // fresh FromDense regardless of what capacity the previous build left.
  for (double density : {0.5, 0.01, 1.0, 0.1}) {
    Tensor dense = RandomAtDensity({19, 23}, density, rng);
    csr.AssignFromDense(dense);
    CsrMatrix fresh = CsrMatrix::FromDense(dense);
    ASSERT_EQ(csr.nnz(), fresh.nnz()) << "density " << density;
    EXPECT_EQ(csr.row_ptr(), fresh.row_ptr());
    EXPECT_EQ(csr.col_idx(), fresh.col_idx());
    EXPECT_EQ(csr.values(), fresh.values());
    ExpectBitEqual(dense, csr.ToDense(), "AssignFromDense round-trip");
  }
}

// --- Operator routing equivalence: off vs on must be bit-identical ----

class SparseRoutingDensityTest : public ::testing::TestWithParam<double> {
};

TEST_P(SparseRoutingDensityTest, VertexMixFixedForwardBackwardBitIdentical) {
  double density = GetParam();
  Rng rng(201);
  Tensor op = RandomAtDensity({17, 17}, density, rng);
  Tensor x = Tensor::RandomNormal({2, 3, 5, 17}, rng);
  Tensor gy = Tensor::RandomNormal({2, 3, 5, 17}, rng);

  VertexMix mix(op.Clone());
  Tensor y_dense, g_dense;
  {
    ScopedSparseMode off(SparseMode::kOff);
    y_dense = mix.Forward(x);
    g_dense = mix.Backward(gy);
  }
  {
    ScopedSparseMode on(SparseMode::kOn);
    ExpectBitEqual(y_dense, mix.Forward(x), "VertexMix forward");
    ExpectBitEqual(g_dense, mix.Backward(gy), "VertexMix backward");
  }
}

TEST_P(SparseRoutingDensityTest, VertexMixLearnableForwardBitIdentical) {
  double density = GetParam();
  Rng rng(202);
  Tensor op = RandomAtDensity({13, 13}, density, rng);
  Tensor x = Tensor::RandomNormal({2, 2, 3, 13}, rng);
  Tensor gy = Tensor::RandomNormal({2, 2, 3, 13}, rng);

  VertexMix mix(op.Clone(), /*learnable=*/true);
  Tensor y_dense, g_dense;
  {
    ScopedSparseMode off(SparseMode::kOff);
    y_dense = mix.Forward(x);
    g_dense = mix.Backward(gy);
  }
  {
    ScopedSparseMode on(SparseMode::kOn);
    ExpectBitEqual(y_dense, mix.Forward(x), "learnable VertexMix forward");
    ExpectBitEqual(g_dense, mix.Backward(gy),
                   "learnable VertexMix backward");
  }
}

TEST_P(SparseRoutingDensityTest, DynamicVertexMixForwardBackwardBitIdentical) {
  double density = GetParam();
  Rng rng(203);
  Tensor ops = RandomAtDensity({2, 4, 17, 17}, density, rng);
  Tensor x = Tensor::RandomNormal({2, 3, 4, 17}, rng);
  Tensor gy = Tensor::RandomNormal({2, 3, 4, 17}, rng);

  DynamicVertexMix mix;
  mix.SetOperators(ops.Clone());
  Tensor y_dense, g_dense;
  {
    ScopedSparseMode off(SparseMode::kOff);
    y_dense = mix.Forward(x);
    g_dense = mix.Backward(gy);
  }
  {
    ScopedSparseMode on(SparseMode::kOn);
    ExpectBitEqual(y_dense, mix.Forward(x), "DynamicVertexMix forward");
    ExpectBitEqual(g_dense, mix.Backward(gy), "DynamicVertexMix backward");
  }
}

TEST_P(SparseRoutingDensityTest,
       LearnableHyperedgeMixForwardBackwardBitIdentical) {
  double density = GetParam();
  // The incidence factors have their own (topology-determined) density;
  // the parameter seeds distinct topologies so each case covers a
  // different sparsity pattern.
  uint64_t seed = 300 + static_cast<uint64_t>(density * 100.0);
  Rng rng(seed);
  int64_t v = 14;
  std::vector<Hyperedge> edges;
  for (int64_t e = 0; e < 5; ++e) {
    edges.push_back(rng.SampleWithoutReplacement(v, rng.UniformInt(2, 5)));
  }
  Hypergraph h(v, std::move(edges));
  Tensor x = Tensor::RandomNormal({2, 2, 3, v}, rng);
  Tensor gy = Tensor::RandomNormal({2, 2, 3, v}, rng);

  Tensor y_dense, g_dense;
  {
    ScopedSparseMode off(SparseMode::kOff);
    LearnableHyperedgeMix mix(h);
    y_dense = mix.Forward(x);
    g_dense = mix.Backward(gy);
  }
  {
    ScopedSparseMode on(SparseMode::kOn);
    LearnableHyperedgeMix mix(h);
    ExpectBitEqual(y_dense, mix.Forward(x),
                   "LearnableHyperedgeMix forward");
    ExpectBitEqual(g_dense, mix.Backward(gy),
                   "LearnableHyperedgeMix backward");
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, SparseRoutingDensityTest,
                         ::testing::Values(0.01, 0.1, 0.5, 1.0));

// Prime / tile-straddling vertex count on the layer path.
TEST(SparseRouting, VertexMixPrimeShapeBitIdentical) {
  Rng rng(205);
  Tensor op = RandomAtDensity({61, 61}, 0.1, rng);
  Tensor x = Tensor::RandomNormal({1, 2, 3, 61}, rng);
  VertexMix mix(op.Clone());
  Tensor y_dense;
  {
    ScopedSparseMode off(SparseMode::kOff);
    y_dense = mix.Forward(x);
  }
  ScopedSparseMode on(SparseMode::kOn);
  ExpectBitEqual(y_dense, mix.Forward(x), "VertexMix prime-V forward");
}

// --- Whole model: routing must not change a single logit bit ----------

TEST(SparseRouting, FullModelForwardBitIdenticalAcrossModes) {
  DhgcnConfig config =
      DhgcnConfig::Tiny(SkeletonLayoutType::kNtu25, /*num_classes=*/3);
  DhgcnModel model(config);
  model.SetTraining(false);
  Rng rng(206);
  Tensor x = Tensor::RandomNormal({2, 3, 8, 25}, rng);

  Tensor logits_off;
  {
    ScopedSparseMode off(SparseMode::kOff);
    logits_off = model.Forward(x);
  }
  {
    ScopedSparseMode on(SparseMode::kOn);
    ExpectBitEqual(logits_off, model.Forward(x), "model forward (on)");
  }
  {
    ScopedSparseMode au(SparseMode::kAuto);
    ExpectBitEqual(logits_off, model.Forward(x), "model forward (auto)");
  }
}

// Plan capture bakes the routing decision in as kSpMM ops; replay must
// still be bit-identical to the layer path.
TEST(SparseRouting, PlanReplayWithSparseCaptureBitIdentical) {
  ScopedSparseMode on(SparseMode::kOn);
  DhgcnConfig config =
      DhgcnConfig::Tiny(SkeletonLayoutType::kNtu25, /*num_classes=*/3);
  DhgcnModel model(config);
  model.SetTraining(false);
  Rng rng(207);
  Tensor x = Tensor::RandomNormal({2, 3, 8, 25}, rng);

  Tensor layer_path = model.Forward(x);
  PlanRunner runner(
      BuildInferencePlan(model, x.shape(), PlanMode::kUnfused)
          .ValueOrDie());
  ExpectBitEqual(layer_path, runner.Run(x), "sparse-captured plan replay");
}

// --- Gradcheck through the forced-sparse path -------------------------

TEST(SparseRouting, GradcheckLearnableVertexMixSparsePath) {
  ScopedSparseMode on(SparseMode::kOn);
  Rng rng(208);
  Tensor op = RandomAtDensity({9, 9}, 0.3, rng);
  VertexMix mix(op.Clone(), /*learnable=*/true);
  Tensor x = Tensor::RandomNormal({2, 2, 3, 9}, rng);
  testing::ExpectGradientsMatch(mix, x);
}

TEST(SparseRouting, GradcheckLearnableHyperedgeMixSparsePath) {
  ScopedSparseMode on(SparseMode::kOn);
  Rng rng(209);
  int64_t v = 10;
  std::vector<Hyperedge> edges;
  for (int64_t e = 0; e < 4; ++e) {
    edges.push_back(rng.SampleWithoutReplacement(v, rng.UniformInt(2, 4)));
  }
  Hypergraph h(v, std::move(edges));
  LearnableHyperedgeMix mix(h);
  Tensor x = Tensor::RandomNormal({2, 2, 2, v}, rng);
  testing::ExpectGradientsMatch(mix, x);
}

// --- Router policy ----------------------------------------------------

TEST(SparseRouterPolicy, ParseSparseMode) {
  EXPECT_EQ(ParseSparseMode("off").ValueOrDie(), SparseMode::kOff);
  EXPECT_EQ(ParseSparseMode("auto").ValueOrDie(), SparseMode::kAuto);
  EXPECT_EQ(ParseSparseMode("on").ValueOrDie(), SparseMode::kOn);
  EXPECT_FALSE(ParseSparseMode("dense").ok());
  EXPECT_FALSE(ParseSparseMode("").ok());
  EXPECT_STREQ(SparseModeName(SparseMode::kAuto), "auto");
}

TEST(SparseRouterPolicy, ShouldRouteRespectsModeAndThreshold) {
  {
    ScopedSparseMode off(SparseMode::kOff);
    EXPECT_FALSE(SparseRouter::Get().ShouldRoute(0.0));
    EXPECT_FALSE(SparseRouter::Get().ShouldRoute(1.0));
  }
  {
    ScopedSparseMode on(SparseMode::kOn);
    EXPECT_TRUE(SparseRouter::Get().ShouldRoute(0.0));
    EXPECT_TRUE(SparseRouter::Get().ShouldRoute(1.0));
  }
  {
    ScopedSparseMode au(SparseMode::kAuto, /*threshold=*/0.25);
    EXPECT_TRUE(SparseRouter::Get().ShouldRoute(0.1));
    EXPECT_TRUE(SparseRouter::Get().ShouldRoute(0.25));
    EXPECT_FALSE(SparseRouter::Get().ShouldRoute(0.26));
    EXPECT_FALSE(SparseRouter::Get().ShouldRoute(1.0));
  }
  // Scoped guards must have restored the defaults.
  EXPECT_EQ(SparseRouter::Get().density_threshold(),
            SparseRouter::Get().density_threshold());
}

TEST(SparseRouterPolicy, MeasureDensityCountsNonzeros) {
  Tensor t({2, 3});
  t.Fill(0.0f);
  EXPECT_EQ(SparseRouter::MeasureDensity(t), 0.0);
  t.flat(0) = 1.0f;
  t.flat(5) = -2.0f;
  EXPECT_NEAR(SparseRouter::MeasureDensity(t), 2.0 / 6.0, 1e-12);
  EXPECT_EQ(SparseRouter::MeasureDensity(nullptr, 0), 0.0);
}

// --- Pruner: schedule, determinism, mask discipline -------------------

TEST(PrunerTest, CubicScheduleRampsFromZeroToTarget) {
  Rng rng(401);
  Linear layer(8, 16, rng);
  PruneOptions options;
  options.enabled = true;
  options.target_sparsity = 0.8;
  options.start_epoch = 2;
  options.end_epoch = 6;
  Pruner pruner(&layer, options);

  EXPECT_EQ(pruner.SparsityForEpoch(0), 0.0);
  EXPECT_EQ(pruner.SparsityForEpoch(1), 0.0);
  EXPECT_GT(pruner.SparsityForEpoch(2), 0.0);
  EXPECT_EQ(pruner.SparsityForEpoch(6), 0.8);
  EXPECT_EQ(pruner.SparsityForEpoch(100), 0.8);
  double prev = 0.0;
  for (int64_t e = 0; e <= 10; ++e) {
    double s = pruner.SparsityForEpoch(e);
    EXPECT_GE(s, prev) << "epoch " << e;
    EXPECT_LE(s, 0.8);
    prev = s;
  }
}

TEST(PrunerTest, OneShotScheduleJumpsAtStart) {
  Rng rng(402);
  Linear layer(8, 16, rng);
  PruneOptions options;
  options.enabled = true;
  options.target_sparsity = 0.5;
  options.start_epoch = 3;
  options.end_epoch = -1;  // one-shot
  Pruner pruner(&layer, options);
  EXPECT_EQ(pruner.SparsityForEpoch(2), 0.0);
  EXPECT_EQ(pruner.SparsityForEpoch(3), 0.5);
}

TEST(PrunerTest, PrunesExactCountWithDeterministicTieBreak) {
  Rng rng(403);
  Linear layer(8, 16, rng);  // weight (16, 8): 128 elements, bias excluded

  // All-equal magnitudes: the (|w|, flat index) total order must prune
  // exactly floor(s * numel) entries, lowest flat indices first.
  Tensor* weight = layer.Params()[0].value;
  ASSERT_EQ(weight->numel(), 128);
  weight->Fill(1.0f);
  PruneOptions options;
  options.enabled = true;
  options.target_sparsity = 0.5;
  options.start_epoch = 0;
  Pruner pruner(&layer, options);
  EXPECT_EQ(pruner.prunable_tensors(), 1);  // the 1-D bias is excluded
  pruner.OnEpochBegin(0);
  EXPECT_EQ(pruner.MaskedFraction(), 0.5);
  for (int64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(weight->flat(i), 0.0f) << "index " << i;
  }
  for (int64_t i = 64; i < 128; ++i) {
    EXPECT_EQ(weight->flat(i), 1.0f) << "index " << i;
  }
}

TEST(PrunerTest, ApplyReZeroesMaskedWeightsAfterUpdates) {
  Rng rng(404);
  Linear layer(8, 16, rng);
  PruneOptions options;
  options.enabled = true;
  options.target_sparsity = 0.75;
  options.start_epoch = 0;
  Pruner pruner(&layer, options);
  pruner.OnEpochBegin(0);
  double masked = pruner.MaskedFraction();
  EXPECT_EQ(masked, 96.0 / 128.0);
  EXPECT_GE(pruner.MeasuredSparsity(), masked);

  // Simulate an optimizer step resurrecting every weight.
  Tensor* weight = layer.Params()[0].value;
  for (int64_t i = 0; i < weight->numel(); ++i) weight->flat(i) += 0.5f;
  EXPECT_LT(pruner.MeasuredSparsity(), masked);
  pruner.Apply();
  EXPECT_GE(pruner.MeasuredSparsity(), masked);
  EXPECT_EQ(pruner.MaskedFraction(), masked);
}

// --- Pruned fine-tuned training: accuracy parity and real sparsity ----

TEST(PrunerTest, PrunedFineTunedModelNearBaselineAccuracy) {
  SyntheticDataConfig data_config = NtuLikeConfig(2, 14, 8, 21);
  SkeletonDataset dataset =
      SkeletonDataset::Generate(data_config).MoveValue();
  DatasetSplit split = MakeSplit(dataset, SplitProtocol::kRandom, 4);

  auto run = [&](bool prune) {
    DataLoader loader(&dataset, split.train, 4, InputStream::kJoint,
                      /*shuffle=*/true, Rng(9));
    DhgcnConfig config =
        DhgcnConfig::Tiny(SkeletonLayoutType::kNtu25, /*num_classes=*/2);
    DhgcnModel model(config);
    TrainOptions options;
    options.epochs = 8;
    options.initial_lr = 0.05f;
    options.lr_milestones = {6};
    if (prune) {
      options.prune.enabled = true;
      options.prune.target_sparsity = 0.5;
      options.prune.start_epoch = 3;
      options.prune.end_epoch = 5;  // epochs 6-7 fine-tune the survivors
    }
    Trainer trainer(&model, options);
    std::vector<EpochStats> history =
        trainer.Train(loader).ValueOrDie();
    double sparsity = prune ? trainer.pruner()->MeasuredSparsity() : 0.0;
    DataLoader eval_loader(&dataset, split.test, 4, InputStream::kJoint,
                           /*shuffle=*/false, Rng(10));
    EvalMetrics metrics = Evaluate(model, eval_loader);
    return std::make_tuple(history.back().train_top1, metrics.top1,
                           sparsity);
  };

  auto [base_train, base_test, base_sparsity] = run(/*prune=*/false);
  auto [pruned_train, pruned_test, pruned_sparsity] = run(/*prune=*/true);

  // The pruner must actually have zeroed the target fraction...
  EXPECT_GE(pruned_sparsity, 0.5);
  EXPECT_EQ(base_sparsity, 0.0);
  // ...without costing accuracy: fine-tuned pruned model within one
  // test sample of the unpruned baseline.
  double one_sample = 1.0 / static_cast<double>(split.test.size());
  EXPECT_GE(pruned_test, base_test - one_sample - 1e-9)
      << "baseline=" << base_test << " pruned=" << pruned_test;
  EXPECT_GT(pruned_train, 0.5);
  (void)base_train;
}

}  // namespace
}  // namespace dhgcn
