// End-to-end integration tests: full pipeline from synthetic data
// generation through training to evaluation, for the core DHGCN model and
// the two-stream framework.

#include "gtest/gtest.h"

#include "core/dhgcn_model.h"
#include "models/model_zoo.h"
#include "tensor/tensor_ops.h"
#include "train/evaluator.h"
#include "train/experiment.h"

namespace dhgcn {
namespace {

ModelZooOptions SmallZoo() {
  ModelZooOptions options;
  // Three blocks: at CPU-test scale the GAP-over-joints head needs depth
  // to move joint identity into channels (see DESIGN.md).
  options.scale.channels = {8, 16, 24};
  options.scale.strides = {1, 2, 1};
  options.scale.dropout = 0.0f;
  options.kn = 2;
  options.km = 3;
  options.seed = 17;
  return options;
}

TrainOptions FastTrain(int64_t epochs) {
  TrainOptions options;
  options.epochs = epochs;
  // The paper's LR 0.1 is tuned for batch 16 on full-scale data; 0.05 is
  // the stable setting for these CPU-scale models.
  options.initial_lr = 0.05f;
  options.lr_milestones = {epochs * 3 / 5, epochs * 4 / 5};
  return options;
}

TEST(IntegrationTest, DhgcnLearnsNtuLikeDataAboveChance) {
  SyntheticDataConfig data_config = NtuLikeConfig(3, 16, 12, 3);
  SkeletonDataset dataset =
      SkeletonDataset::Generate(data_config).MoveValue();
  DatasetSplit split = MakeSplit(dataset, SplitProtocol::kCrossSubject);
  LayerPtr model = CreateModel(ModelKind::kDhgcn,
                               SkeletonLayoutType::kNtu25, 3, SmallZoo());
  EvalMetrics metrics =
      TrainAndEvaluateStream(*model, dataset, split, InputStream::kJoint,
                             FastTrain(24), /*batch_size=*/8, /*seed=*/5);
  // Chance is 33% on 3 classes; the model must do clearly better.
  EXPECT_GT(metrics.top1, 0.4) << "top1=" << metrics.top1;
  EXPECT_GE(metrics.top5, metrics.top1);
  EXPECT_EQ(metrics.count, static_cast<int64_t>(split.test.size()));
}

TEST(IntegrationTest, DhgcnHandlesKineticsLikeDefectiveData) {
  SyntheticDataConfig data_config = KineticsLikeConfig(3, 12, 16, 9);
  SkeletonDataset dataset =
      SkeletonDataset::Generate(data_config).MoveValue();
  DatasetSplit split = MakeSplit(dataset, SplitProtocol::kRandom, 2);
  LayerPtr model =
      CreateModel(ModelKind::kDhgcn, SkeletonLayoutType::kKinetics18, 3,
                  SmallZoo());
  EvalMetrics metrics =
      TrainAndEvaluateStream(*model, dataset, split, InputStream::kJoint,
                             FastTrain(6), 8, 5);
  EXPECT_GT(metrics.top1, 1.0 / 3.0 - 1e-9) << "top1=" << metrics.top1;
}

TEST(IntegrationTest, TwoStreamPipelineRunsAndFusionIsReasonable) {
  SyntheticDataConfig data_config = NtuLikeConfig(3, 10, 12, 13);
  SkeletonDataset dataset =
      SkeletonDataset::Generate(data_config).MoveValue();
  DatasetSplit split = MakeSplit(dataset, SplitProtocol::kCrossView);
  ModelZooOptions zoo = SmallZoo();
  TwoStreamEval result = RunTwoStreamExperiment(
      [&zoo, &dataset]() {
        return CreateModel(ModelKind::kStgcn, dataset.layout_type(),
                           dataset.num_classes(), zoo);
      },
      dataset, split, FastTrain(5), 8, 21);
  // All three evaluations cover the full test set.
  EXPECT_EQ(result.joint.count, static_cast<int64_t>(split.test.size()));
  EXPECT_EQ(result.bone.count, result.joint.count);
  EXPECT_EQ(result.fused.count, result.joint.count);
  // Fusion should not be drastically worse than the best single stream.
  double best_single = std::max(result.joint.top1, result.bone.top1);
  EXPECT_GE(result.fused.top1, best_single - 0.25);
}

TEST(IntegrationTest, BranchAblationOrderingIsStable) {
  // The full DHGCN must at least run all ablation variants end-to-end;
  // accuracy ordering is asserted loosely (full >= weakest - slack) since
  // these are tiny runs.
  SyntheticDataConfig data_config = NtuLikeConfig(3, 8, 12, 29);
  SkeletonDataset dataset =
      SkeletonDataset::Generate(data_config).MoveValue();
  DatasetSplit split = MakeSplit(dataset, SplitProtocol::kCrossSubject);

  auto run_variant = [&](bool enable_static, bool enable_weight,
                         bool enable_topology) {
    DhgcnConfig config = DhgcnConfig::Tiny(SkeletonLayoutType::kNtu25, 3);
    config.enable_static = enable_static;
    config.enable_joint_weight = enable_weight;
    config.enable_topology = enable_topology;
    config.topology.kn = 2;
    config.topology.km = 2;
    auto model = DhgcnModel::Make(config).MoveValue();
    return TrainAndEvaluateStream(*model, dataset, split,
                                  InputStream::kJoint, FastTrain(4), 8, 31);
  };

  EvalMetrics full = run_variant(true, true, true);
  EvalMetrics no_static = run_variant(false, true, true);
  EvalMetrics no_dynamic = run_variant(true, false, false);
  EXPECT_GT(full.count, 0);
  EXPECT_GT(no_static.count, 0);
  EXPECT_GT(no_dynamic.count, 0);
}

TEST(IntegrationTest, PaperConfigForwardPassWorksAtFullDepth) {
  // The 10-block paper configuration must run a forward/backward pass on
  // NTU-sized input (we keep the batch and frame count tiny for CPU).
  DhgcnConfig config = DhgcnConfig::Paper(SkeletonLayoutType::kNtu25, 60);
  config.topology.kn = 3;
  config.topology.km = 4;
  auto model = DhgcnModel::Make(config).MoveValue();
  Rng rng(37);
  Tensor x = Tensor::RandomNormal({1, 3, 8, 25}, rng, 0.0f, 0.3f);
  Tensor logits = model->Forward(x);
  EXPECT_EQ(logits.shape(), (Shape{1, 60}));
  EXPECT_FALSE(HasNonFinite(logits));
  Tensor g = model->Backward(Tensor::Ones({1, 60}));
  EXPECT_EQ(g.shape(), x.shape());
  EXPECT_GT(model->ParameterCount(), 500000);  // genuinely deep model
}

}  // namespace
}  // namespace dhgcn
