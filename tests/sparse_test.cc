#include "tensor/sparse.h"

#include "gtest/gtest.h"

#include "base/rng.h"
#include "core/static_hypergraph.h"
#include "data/skeleton.h"
#include "hypergraph/hypergraph_conv.h"
#include "tensor/linalg.h"
#include "tensor/tensor_ops.h"
#include "tests/gradcheck.h"

namespace dhgcn {
namespace {

Tensor RandomSparseDense(int64_t rows, int64_t cols, float keep_prob,
                         Rng& rng) {
  Tensor dense({rows, cols});
  for (int64_t i = 0; i < dense.numel(); ++i) {
    if (rng.Bernoulli(keep_prob)) dense.flat(i) = rng.Normal();
  }
  return dense;
}

// --- CsrMatrix construction ---------------------------------------------------

TEST(CsrMatrixTest, EmptyMatrixHasNoEntries) {
  CsrMatrix csr(3, 4);
  EXPECT_EQ(csr.rows(), 3);
  EXPECT_EQ(csr.cols(), 4);
  EXPECT_EQ(csr.nnz(), 0);
  EXPECT_DOUBLE_EQ(csr.Density(), 0.0);
  EXPECT_TRUE(AllClose(csr.ToDense(), Tensor::Zeros({3, 4})));
}

TEST(CsrMatrixTest, FromDenseRoundTrip) {
  Rng rng(1);
  Tensor dense = RandomSparseDense(7, 9, 0.3f, rng);
  CsrMatrix csr = CsrMatrix::FromDense(dense);
  EXPECT_TRUE(AllClose(csr.ToDense(), dense, 0.0f, 0.0f));
}

TEST(CsrMatrixTest, FromDenseDropsBelowTolerance) {
  Tensor dense = Tensor::FromVector({2, 2}, {0.5f, 0.01f, -0.02f, 0.0f});
  CsrMatrix csr = CsrMatrix::FromDense(dense, /*tolerance=*/0.05f);
  EXPECT_EQ(csr.nnz(), 1);
  EXPECT_FLOAT_EQ(csr.ToDense().at(0, 0), 0.5f);
}

TEST(CsrMatrixTest, RowPtrIsMonotoneAndConsistent) {
  Rng rng(2);
  Tensor dense = RandomSparseDense(10, 6, 0.25f, rng);
  CsrMatrix csr = CsrMatrix::FromDense(dense);
  const auto& row_ptr = csr.row_ptr();
  ASSERT_EQ(row_ptr.size(), 11u);
  EXPECT_EQ(row_ptr.front(), 0);
  EXPECT_EQ(row_ptr.back(), csr.nnz());
  for (size_t r = 0; r + 1 < row_ptr.size(); ++r) {
    EXPECT_LE(row_ptr[r], row_ptr[r + 1]);
  }
}

TEST(CsrMatrixTest, FromTripletsMatchesDense) {
  CsrMatrix csr = CsrMatrix::FromTriplets(
      3, 3, {{2, 0, 5.0f}, {0, 1, 1.0f}, {1, 2, -2.0f}, {0, 0, 3.0f}});
  Tensor expected({3, 3});
  expected.at(0, 0) = 3.0f;
  expected.at(0, 1) = 1.0f;
  expected.at(1, 2) = -2.0f;
  expected.at(2, 0) = 5.0f;
  EXPECT_TRUE(AllClose(csr.ToDense(), expected, 0.0f, 0.0f));
}

TEST(CsrMatrixTest, FromTripletsSumsDuplicates) {
  CsrMatrix csr = CsrMatrix::FromTriplets(
      2, 2, {{0, 0, 1.0f}, {0, 0, 2.5f}, {1, 1, -1.0f}});
  EXPECT_EQ(csr.nnz(), 2);
  EXPECT_FLOAT_EQ(csr.ToDense().at(0, 0), 3.5f);
}

TEST(CsrMatrixTest, TransposedMatchesDenseTranspose) {
  Rng rng(3);
  Tensor dense = RandomSparseDense(5, 8, 0.3f, rng);
  CsrMatrix csr = CsrMatrix::FromDense(dense);
  EXPECT_TRUE(AllClose(csr.Transposed().ToDense(), Transpose2D(dense),
                       0.0f, 0.0f));
}

TEST(CsrMatrixTest, MatVecMatchesDense) {
  Rng rng(4);
  Tensor dense = RandomSparseDense(6, 4, 0.4f, rng);
  CsrMatrix csr = CsrMatrix::FromDense(dense);
  Tensor x = Tensor::RandomNormal({4}, rng);
  Tensor expected = MatMul(dense, x.Reshape({4, 1})).Reshape({6});
  EXPECT_TRUE(AllClose(csr.MatVec(x), expected, 1e-5f, 1e-6f));
}

// --- SpMM -----------------------------------------------------------------------

TEST(SpMMTest, MatchesDenseMatMul) {
  Rng rng(5);
  Tensor a_dense = RandomSparseDense(6, 10, 0.3f, rng);
  Tensor b = Tensor::RandomNormal({10, 7}, rng);
  CsrMatrix a = CsrMatrix::FromDense(a_dense);
  EXPECT_TRUE(AllClose(SpMM(a, b), MatMul(a_dense, b), 1e-4f, 1e-5f));
}

TEST(SpMMTest, AccumulateAddsIntoExisting) {
  CsrMatrix a = CsrMatrix::FromTriplets(2, 2, {{0, 0, 2.0f}});
  Tensor b = Tensor::Ones({2, 1});
  Tensor c = Tensor::Full({2, 1}, 10.0f);
  SpMMAccumulate(a, b, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 12.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 10.0f);
}

TEST(SpMMTest, IdentityIsNeutral) {
  Rng rng(6);
  CsrMatrix eye = CsrMatrix::FromDense(Tensor::Eye(5));
  Tensor b = Tensor::RandomNormal({5, 3}, rng);
  EXPECT_TRUE(AllClose(SpMM(eye, b), b, 1e-6f, 1e-7f));
}

// --- SparseVertexMix ----------------------------------------------------------------

TEST(SparseVertexMixTest, MatchesDenseVertexMix) {
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kNtu25);
  Tensor op = NormalizedHypergraphOperator(StaticSkeletonHypergraph(layout));
  VertexMix dense_mix(op);
  SparseVertexMix sparse_mix(op);
  Rng rng(7);
  Tensor x = Tensor::RandomNormal({2, 4, 3, 25}, rng);
  EXPECT_TRUE(AllClose(sparse_mix.Forward(x), dense_mix.Forward(x), 1e-4f,
                       1e-5f));
}

TEST(SparseVertexMixTest, BackwardMatchesDense) {
  Rng rng(8);
  Tensor op = RandomSparseDense(6, 6, 0.4f, rng);
  VertexMix dense_mix(op);
  SparseVertexMix sparse_mix(op);
  Tensor x = Tensor::RandomNormal({1, 2, 3, 6}, rng);
  dense_mix.Forward(x);
  sparse_mix.Forward(x);
  Tensor g = Tensor::RandomNormal({1, 2, 3, 6}, rng);
  EXPECT_TRUE(AllClose(sparse_mix.Backward(g), dense_mix.Backward(g),
                       1e-4f, 1e-5f));
}

TEST(SparseVertexMixTest, GradCheck) {
  Rng rng(9);
  Tensor op = RandomSparseDense(5, 5, 0.5f, rng);
  SparseVertexMix mix(op);
  Tensor x = Tensor::RandomNormal({1, 2, 2, 5}, rng);
  testing::ExpectGradientsMatch(mix, x);
}

TEST(SparseVertexMixTest, StaticHypergraphOperatorIsActuallySparse) {
  // The design-choice rationale: structural operators have exploitable
  // sparsity. The NTU static-hypergraph operator must be well under half
  // dense.
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kNtu25);
  CsrMatrix csr = CsrMatrix::FromDense(
      NormalizedHypergraphOperator(StaticSkeletonHypergraph(layout)),
      1e-8f);
  EXPECT_LT(csr.Density(), 0.5);
  EXPECT_GT(csr.nnz(), 25);  // but not diagonal either
}

TEST(SparseVertexMixTest, SkeletonAdjacencyIsVerySparse) {
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kNtu25);
  CsrMatrix csr = CsrMatrix::FromDense(
      SkeletonGraph(layout).NormalizedAdjacency(), 1e-8f);
  // Tree adjacency + self loops: nnz = 2 * 24 + 25 = 73 of 625.
  EXPECT_EQ(csr.nnz(), 73);
  EXPECT_LT(csr.Density(), 0.15);
}

}  // namespace
}  // namespace dhgcn
