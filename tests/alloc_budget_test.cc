// Allocation-budget guarantees of the workspace-planned execution path.
//
// The acceptance bar for the workspace refactor: a steady-state training
// step (forward + loss + backward + optimizer update) on the full DHGCN
// model — all three branches enabled — performs at most 10 owning tensor
// allocations after a two-step warmup. Warmup steps may allocate: the
// arena grows to the step's high-water mark and the optimizer lazily
// creates its momentum buffers; afterwards every activation lives in the
// arena and the heap goes quiet.

#include <cmath>
#include <vector>

#include "gtest/gtest.h"

#include "base/alloc_stats.h"
#include "base/rng.h"
#include "core/dhgcn_model.h"
#include "data/dataloader.h"
#include "data/dataset.h"
#include "data/synthetic_generator.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/sparse.h"
#include "tensor/sparse_router.h"
#include "tensor/workspace.h"
#include "train/trainer.h"

namespace dhgcn {
namespace {

constexpr uint64_t kStepBudget = 10;

TEST(AllocBudgetTest, SteadyStateTrainingStepWithinBudget) {
  DhgcnConfig config =
      DhgcnConfig::Tiny(SkeletonLayoutType::kKinetics18, /*num_classes=*/4);
  ASSERT_TRUE(config.enable_static);
  ASSERT_TRUE(config.enable_joint_weight);
  ASSERT_TRUE(config.enable_topology);
  DhgcnModel model(config);
  SoftmaxCrossEntropy loss;
  SgdOptimizer::Options sgd_options;
  sgd_options.lr = 0.01f;
  SgdOptimizer optimizer(model.Params(), sgd_options);

  Rng rng(7);
  Tensor x = Tensor::RandomNormal({2, 3, 8, 18}, rng);
  std::vector<int64_t> labels = {1, 3};

  Workspace ws;
  for (int step = 0; step < 5; ++step) {
    AllocStatsGuard guard;
    ws.Reset();
    optimizer.ZeroGrad();
    Tensor logits;
    model.ForwardInto(x, ws, &logits);
    float loss_value = loss.TryForward(logits, labels, ws).ValueOrDie();
    ASSERT_TRUE(std::isfinite(loss_value));
    Tensor grad_input;
    model.BackwardInto(loss.Backward(ws), ws, &grad_input);
    optimizer.Step();
    if (step >= 2) {
      EXPECT_LE(guard.allocations(), kStepBudget)
          << "step " << step << " allocated " << guard.allocations()
          << " owning tensors (" << guard.bytes() << " bytes)";
    }
  }
}

TEST(AllocBudgetTest, SteadyStateInferenceStepWithinBudget) {
  DhgcnConfig config =
      DhgcnConfig::Tiny(SkeletonLayoutType::kKinetics18, /*num_classes=*/4);
  DhgcnModel model(config);
  model.SetTraining(false);
  Rng rng(8);
  Tensor x = Tensor::RandomNormal({2, 3, 8, 18}, rng);

  Workspace ws;
  for (int step = 0; step < 5; ++step) {
    AllocStatsGuard guard;
    ws.Reset();
    Tensor logits;
    model.ForwardInto(x, ws, &logits);
    ASSERT_EQ(logits.dim(0), 2);
    if (step >= 2) {
      EXPECT_LE(guard.allocations(), kStepBudget)
          << "inference step " << step << " allocated "
          << guard.allocations() << " owning tensors";
    }
  }
}

TEST(AllocBudgetTest, TrainerWorkspacePathAllocatesFarLessThanLegacy) {
  SyntheticDataConfig data_config = NtuLikeConfig(3, 6, 8, 42);
  SkeletonDataset dataset = SkeletonDataset::Generate(data_config).MoveValue();
  DatasetSplit split = dataset.RandomSplit(0.3f, 1);

  auto run_epochs = [&](bool use_workspace) -> std::vector<EpochStats> {
    DataLoader loader(&dataset, split.train, 6, InputStream::kJoint,
                      /*shuffle=*/false, Rng(3));
    DhgcnConfig config =
        DhgcnConfig::Tiny(SkeletonLayoutType::kNtu25, /*num_classes=*/3);
    DhgcnModel model(config);
    TrainOptions options;
    options.epochs = 2;
    options.initial_lr = 0.01f;
    options.use_workspace = use_workspace;
    Trainer trainer(&model, options);
    return trainer.Train(loader).ValueOrDie();
  };

  std::vector<EpochStats> planned = run_epochs(true);
  std::vector<EpochStats> legacy = run_epochs(false);
  ASSERT_EQ(planned.size(), 2u);
  ASSERT_EQ(legacy.size(), 2u);

  // EpochStats surfaces the per-epoch allocation totals.
  EXPECT_GT(legacy[1].tensor_allocations, 0u);
  EXPECT_GT(planned[1].tensor_alloc_bytes, 0u);  // batch assembly remains

  // Epoch 2 on the workspace path is steady state: only batch assembly
  // (the loader materializes each batch tensor) still allocates, so the
  // legacy path must allocate at least 10x more.
  EXPECT_LT(planned[1].tensor_allocations * 10, legacy[1].tensor_allocations);
}

// The legacy SpMM/SpMMAccumulate entry points allocate an owning result
// per call; the *Into family is the fix — once the CSR capacity is warm,
// repeated sparse steps must not touch the heap at all.
TEST(AllocBudgetTest, SpMMIntoFamilyIsAllocationFreeWhenWarm) {
  Rng rng(9);
  Tensor dense_op = Tensor::RandomNormal({25, 25}, rng);
  for (int64_t i = 0; i < dense_op.numel(); ++i) {
    if (rng.Uniform() >= 0.2f) dense_op.flat(i) = 0.0f;
  }
  Tensor b = Tensor::RandomNormal({25, 16}, rng);   // right operand
  Tensor a = Tensor::RandomNormal({16, 25}, rng);   // left operand
  Tensor x = Tensor::RandomNormal({2, 3, 4, 25}, rng);

  CsrMatrix csr(1, 1);
  csr.AssignFromDense(dense_op);  // warm the index/value capacity
  Tensor c({25, 16});
  Tensor c2({16, 25});
  Tensor y(x.shape());
  Tensor gi(x.shape());

  AllocStatsGuard guard;
  for (int step = 0; step < 4; ++step) {
    csr.AssignFromDense(dense_op);  // steady-state re-compression
    SpMMInto(csr, b, &c);
    SpMMAccumulateInto(csr, b, &c);
    DenseSpMMInto(a, csr, &c2);
    SpMMTransposedBInto(a, csr, &c2);
    SparseMixInto(csr, x, &y);
    gi.Fill(0.0f);
    SparseMixBackwardInto(csr, x, &gi);
  }
  EXPECT_EQ(guard.allocations(), 0u)
      << "sparse kernels allocated " << guard.allocations()
      << " owning tensors in steady state";
}

// The steady-state budget must hold with the router forced on: every
// routable operator runs its CSR path, and the per-step re-compressions
// reuse warm capacity instead of allocating.
TEST(AllocBudgetTest, SteadyStateTrainingStepWithinBudgetSparseRouted) {
  SparseMode saved = SparseRouter::Get().mode();
  SparseRouter::Get().set_mode(SparseMode::kOn);

  DhgcnConfig config =
      DhgcnConfig::Tiny(SkeletonLayoutType::kKinetics18, /*num_classes=*/4);
  DhgcnModel model(config);
  SoftmaxCrossEntropy loss;
  SgdOptimizer::Options sgd_options;
  sgd_options.lr = 0.01f;
  SgdOptimizer optimizer(model.Params(), sgd_options);

  Rng rng(11);
  Tensor x = Tensor::RandomNormal({2, 3, 8, 18}, rng);
  std::vector<int64_t> labels = {1, 3};

  Workspace ws;
  for (int step = 0; step < 5; ++step) {
    AllocStatsGuard guard;
    ws.Reset();
    optimizer.ZeroGrad();
    Tensor logits;
    model.ForwardInto(x, ws, &logits);
    float loss_value = loss.TryForward(logits, labels, ws).ValueOrDie();
    ASSERT_TRUE(std::isfinite(loss_value));
    Tensor grad_input;
    model.BackwardInto(loss.Backward(ws), ws, &grad_input);
    optimizer.Step();
    if (step >= 2) {
      EXPECT_LE(guard.allocations(), kStepBudget)
          << "sparse-routed step " << step << " allocated "
          << guard.allocations() << " owning tensors ("
          << guard.bytes() << " bytes)";
    }
  }
  SparseRouter::Get().set_mode(saved);
}

TEST(AllocBudgetTest, WorkspaceAndLegacyTrainingAreBitIdentical) {
  SyntheticDataConfig data_config = NtuLikeConfig(2, 5, 8, 17);
  SkeletonDataset dataset = SkeletonDataset::Generate(data_config).MoveValue();
  DatasetSplit split = dataset.RandomSplit(0.3f, 1);

  auto final_loss = [&](bool use_workspace) -> double {
    DataLoader loader(&dataset, split.train, 4, InputStream::kJoint,
                      /*shuffle=*/true, Rng(5));
    DhgcnConfig config =
        DhgcnConfig::Tiny(SkeletonLayoutType::kNtu25, /*num_classes=*/2);
    DhgcnModel model(config);
    TrainOptions options;
    options.epochs = 2;
    options.initial_lr = 0.01f;
    options.use_workspace = use_workspace;
    Trainer trainer(&model, options);
    return trainer.Train(loader).ValueOrDie().back().mean_loss;
  };

  EXPECT_EQ(final_loss(true), final_loss(false));
}

}  // namespace
}  // namespace dhgcn
