#include "tensor/tensor.h"

#include "gtest/gtest.h"

#include "base/rng.h"

namespace dhgcn {
namespace {

TEST(ShapeTest, NumelAndToString) {
  EXPECT_EQ(ShapeNumel({2, 3, 4}), 24);
  EXPECT_EQ(ShapeNumel({}), 1);
  EXPECT_EQ(ShapeNumel({5, 0, 2}), 0);
  EXPECT_EQ(ShapeToString({2, 3}), "(2, 3)");
  EXPECT_EQ(ShapeToString({}), "()");
}

TEST(TensorTest, DefaultIsScalarZero) {
  Tensor t;
  EXPECT_EQ(t.ndim(), 0);
  EXPECT_EQ(t.numel(), 1);
  EXPECT_FLOAT_EQ(t.flat(0), 0.0f);
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t({3, 4});
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_FLOAT_EQ(t.flat(i), 0.0f);
}

TEST(TensorTest, FullAndOnes) {
  Tensor full = Tensor::Full({2, 2}, 3.5f);
  EXPECT_FLOAT_EQ(full.at(1, 1), 3.5f);
  Tensor ones = Tensor::Ones({5});
  EXPECT_FLOAT_EQ(ones.flat(4), 1.0f);
}

TEST(TensorTest, FromVectorRoundTrip) {
  Tensor t = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(t.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(t.at(0, 2), 3.0f);
  EXPECT_FLOAT_EQ(t.at(1, 0), 4.0f);
  std::vector<float> back = t.ToVector();
  EXPECT_EQ(back, (std::vector<float>{1, 2, 3, 4, 5, 6}));
}

TEST(TensorDeathTest, FromVectorSizeMismatch) {
  EXPECT_DEATH(Tensor::FromVector({2, 2}, {1, 2, 3}), "DHGCN_CHECK");
}

TEST(TensorTest, FromListAndScalar) {
  Tensor list = Tensor::FromList({7, 8, 9});
  EXPECT_EQ(list.ndim(), 1);
  EXPECT_FLOAT_EQ(list.flat(2), 9.0f);
  Tensor scalar = Tensor::Scalar(-2.0f);
  EXPECT_EQ(scalar.ndim(), 0);
  EXPECT_FLOAT_EQ(scalar.flat(0), -2.0f);
}

TEST(TensorTest, EyeIsIdentity) {
  Tensor eye = Tensor::Eye(4);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_FLOAT_EQ(eye.at(i, j), i == j ? 1.0f : 0.0f);
    }
  }
}

TEST(TensorTest, ArangeValues) {
  Tensor t = Tensor::Arange(4, 1.0f, 0.5f);
  EXPECT_FLOAT_EQ(t.flat(0), 1.0f);
  EXPECT_FLOAT_EQ(t.flat(3), 2.5f);
}

TEST(TensorTest, RandomNormalDeterministicForSeed) {
  Rng rng1(3), rng2(3);
  Tensor a = Tensor::RandomNormal({10}, rng1);
  Tensor b = Tensor::RandomNormal({10}, rng2);
  for (int64_t i = 0; i < 10; ++i) EXPECT_FLOAT_EQ(a.flat(i), b.flat(i));
}

TEST(TensorTest, RandomUniformBounds) {
  Rng rng(4);
  Tensor t = Tensor::RandomUniform({100}, rng, -2.0f, 5.0f);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t.flat(i), -2.0f);
    EXPECT_LT(t.flat(i), 5.0f);
  }
}

TEST(TensorTest, MultiIndexMatchesRowMajorFlat) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.Offset({0, 0, 0}), 0);
  EXPECT_EQ(t.Offset({0, 0, 3}), 3);
  EXPECT_EQ(t.Offset({0, 2, 0}), 8);
  EXPECT_EQ(t.Offset({1, 0, 0}), 12);
  EXPECT_EQ(t.Offset({1, 2, 3}), 23);
  t.at(1, 2, 3) = 42.0f;
  EXPECT_FLOAT_EQ(t.flat(23), 42.0f);
}

TEST(TensorTest, DimSupportsNegativeAxes) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(-1), 4);
  EXPECT_EQ(t.dim(-3), 2);
}

TEST(TensorTest, ReshapeSharesStorage) {
  Tensor t = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor view = t.Reshape({3, 2});
  EXPECT_TRUE(view.SharesStorageWith(t));
  view.at(0, 0) = 100.0f;
  EXPECT_FLOAT_EQ(t.at(0, 0), 100.0f);
}

TEST(TensorTest, ReshapeInfersDimension) {
  Tensor t({4, 6});
  EXPECT_EQ(t.Reshape({-1, 8}).shape(), (Shape{3, 8}));
  EXPECT_EQ(t.Reshape({2, -1}).shape(), (Shape{2, 12}));
  EXPECT_EQ(t.Reshape({-1}).shape(), (Shape{24}));
}

TEST(TensorDeathTest, ReshapeBadNumel) {
  Tensor t({4});
  EXPECT_DEATH(t.Reshape({3}), "DHGCN_CHECK");
}

TEST(TensorTest, CloneIsDeep) {
  Tensor t = Tensor::Ones({3});
  Tensor copy = t.Clone();
  EXPECT_FALSE(copy.SharesStorageWith(t));
  copy.flat(0) = 9.0f;
  EXPECT_FLOAT_EQ(t.flat(0), 1.0f);
}

TEST(TensorTest, CopyConstructorSharesStorage) {
  Tensor t = Tensor::Ones({3});
  Tensor alias = t;
  EXPECT_TRUE(alias.SharesStorageWith(t));
}

TEST(TensorTest, CopyFromReplacesContents) {
  Tensor dst({2, 2});
  Tensor src = Tensor::Full({2, 2}, 5.0f);
  dst.CopyFrom(src);
  EXPECT_FLOAT_EQ(dst.at(1, 1), 5.0f);
  EXPECT_FALSE(dst.SharesStorageWith(src));
}

TEST(TensorTest, FillSetsEverything) {
  Tensor t({2, 5});
  t.Fill(-1.5f);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_FLOAT_EQ(t.flat(i), -1.5f);
}

TEST(TensorTest, ToStringTruncates) {
  Tensor t = Tensor::Arange(100);
  std::string text = t.ToString(4);
  EXPECT_NE(text.find("Tensor(100)"), std::string::npos);
  EXPECT_NE(text.find("..."), std::string::npos);
}

}  // namespace
}  // namespace dhgcn
