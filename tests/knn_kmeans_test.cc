#include <algorithm>
#include <cmath>
#include <set>

#include "gtest/gtest.h"

#include "base/rng.h"
#include "hypergraph/kmeans.h"
#include "hypergraph/knn.h"
#include "tensor/tensor_ops.h"

namespace dhgcn {
namespace {

// Three well-separated 2-D clusters of 4 points each.
Tensor ClusteredPoints() {
  Tensor points({12, 2});
  const float centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  Rng rng(50);
  for (int64_t i = 0; i < 12; ++i) {
    int64_t c = i / 4;
    points.at(i, 0) = centers[c][0] + rng.Uniform(-0.5f, 0.5f);
    points.at(i, 1) = centers[c][1] + rng.Uniform(-0.5f, 0.5f);
  }
  return points;
}

// --- PairwiseDistances -------------------------------------------------------

TEST(PairwiseDistancesTest, MatchesManual) {
  Tensor points = Tensor::FromVector({3, 2}, {0, 0, 3, 4, 0, 1});
  Tensor dist = PairwiseDistances(points);
  EXPECT_FLOAT_EQ(dist.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(dist.at(0, 1), 5.0f);
  EXPECT_FLOAT_EQ(dist.at(0, 2), 1.0f);
  EXPECT_NEAR(dist.at(1, 2), std::sqrt(9.0f + 9.0f), 1e-5f);
}

TEST(PairwiseDistancesTest, SymmetricZeroDiagonal) {
  Rng rng(51);
  Tensor points = Tensor::RandomNormal({8, 3}, rng);
  Tensor dist = PairwiseDistances(points);
  for (int64_t i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(dist.at(i, i), 0.0f);
    for (int64_t j = 0; j < 8; ++j) {
      EXPECT_FLOAT_EQ(dist.at(i, j), dist.at(j, i));
      EXPECT_GE(dist.at(i, j), 0.0f);
    }
  }
}

TEST(PairwiseDistancesTest, TriangleInequality) {
  Rng rng(52);
  Tensor points = Tensor::RandomNormal({6, 4}, rng);
  Tensor dist = PairwiseDistances(points);
  for (int64_t i = 0; i < 6; ++i) {
    for (int64_t j = 0; j < 6; ++j) {
      for (int64_t k = 0; k < 6; ++k) {
        EXPECT_LE(dist.at(i, j),
                  dist.at(i, k) + dist.at(k, j) + 1e-4f);
      }
    }
  }
}

// --- NearestNeighbors ---------------------------------------------------------

TEST(NearestNeighborsTest, ExcludesSelfAndSorts) {
  Tensor points = Tensor::FromVector({4, 1}, {0, 1, 3, 10});
  Tensor dist = PairwiseDistances(points);
  std::vector<int64_t> nn = NearestNeighbors(dist, 0, 3);
  EXPECT_EQ(nn, (std::vector<int64_t>{1, 2, 3}));
  std::vector<int64_t> nn2 = NearestNeighbors(dist, 2, 2);
  EXPECT_EQ(nn2, (std::vector<int64_t>{1, 0}));
}

TEST(NearestNeighborsTest, TieBreaksByIndex) {
  Tensor points = Tensor::FromVector({3, 1}, {0, 1, -1});  // equidistant
  Tensor dist = PairwiseDistances(points);
  std::vector<int64_t> nn = NearestNeighbors(dist, 0, 1);
  EXPECT_EQ(nn[0], 1);  // lower index wins the tie
}

// --- KnnHyperedges -------------------------------------------------------------

TEST(KnnHyperedgesTest, StructureInvariants) {
  Tensor points = ClusteredPoints();
  std::vector<Hyperedge> edges = KnnHyperedges(points, 3);
  ASSERT_EQ(edges.size(), 12u);  // one hyperedge per vertex
  for (int64_t i = 0; i < 12; ++i) {
    const Hyperedge& e = edges[static_cast<size_t>(i)];
    ASSERT_EQ(e.size(), 3u);           // k_n vertices per hyperedge
    EXPECT_EQ(e[0], i);                // anchored at the vertex
    std::set<int64_t> distinct(e.begin(), e.end());
    EXPECT_EQ(distinct.size(), 3u);    // no duplicates
  }
}

TEST(KnnHyperedgesTest, NeighborsComeFromSameCluster) {
  Tensor points = ClusteredPoints();
  std::vector<Hyperedge> edges = KnnHyperedges(points, 3);
  for (int64_t i = 0; i < 12; ++i) {
    int64_t cluster = i / 4;
    for (int64_t v : edges[static_cast<size_t>(i)]) {
      EXPECT_EQ(v / 4, cluster) << "vertex " << i;
    }
  }
}

TEST(KnnHyperedgesTest, KOneIsSingletons) {
  Tensor points = ClusteredPoints();
  std::vector<Hyperedge> edges = KnnHyperedges(points, 1);
  for (int64_t i = 0; i < 12; ++i) {
    EXPECT_EQ(edges[static_cast<size_t>(i)], Hyperedge{i});
  }
}

TEST(KnnHyperedgesTest, KEqualsVIncludesEveryone) {
  Tensor points = ClusteredPoints();
  std::vector<Hyperedge> edges = KnnHyperedges(points, 12);
  for (const Hyperedge& e : edges) {
    std::set<int64_t> distinct(e.begin(), e.end());
    EXPECT_EQ(distinct.size(), 12u);
  }
}

// --- KMeans ----------------------------------------------------------------------

TEST(KMeansTest, ClustersAreDisjointCover) {
  Tensor points = ClusteredPoints();
  Rng rng(53);
  KMeansResult result = KMeansClusters(points, 3, rng);
  ASSERT_EQ(result.clusters.size(), 3u);
  std::set<int64_t> all;
  for (const Hyperedge& c : result.clusters) {
    EXPECT_FALSE(c.empty());
    for (int64_t v : c) {
      EXPECT_TRUE(all.insert(v).second) << "vertex in two clusters";
    }
  }
  EXPECT_EQ(all.size(), 12u);
}

TEST(KMeansTest, RecoversWellSeparatedClusters) {
  Tensor points = ClusteredPoints();
  Rng rng(54);
  KMeansResult result = KMeansClusters(points, 3, rng);
  // Each result cluster must be exactly one ground-truth group.
  for (const Hyperedge& c : result.clusters) {
    ASSERT_EQ(c.size(), 4u);
    int64_t group = c[0] / 4;
    for (int64_t v : c) EXPECT_EQ(v / 4, group);
  }
}

TEST(KMeansTest, ConvergesAndReportsIterations) {
  Tensor points = ClusteredPoints();
  Rng rng(55);
  KMeansResult result = KMeansClusters(points, 3, rng, /*max_iters=*/50);
  EXPECT_TRUE(result.converged);
  EXPECT_GE(result.iterations, 1);
  EXPECT_LE(result.iterations, 50);
}

TEST(KMeansTest, MedoidsAreClusterMembers) {
  Tensor points = ClusteredPoints();
  Rng rng(56);
  KMeansResult result = KMeansClusters(points, 3, rng);
  ASSERT_EQ(result.medoids.size(), 3u);
  for (size_t c = 0; c < 3; ++c) {
    const Hyperedge& members = result.clusters[c];
    EXPECT_NE(std::find(members.begin(), members.end(), result.medoids[c]),
              members.end());
  }
}

TEST(KMeansTest, MedoidMinimizesMeanDistance) {
  Tensor points = ClusteredPoints();
  Rng rng(57);
  KMeansResult result = KMeansClusters(points, 3, rng);
  Tensor dist = PairwiseDistances(points);
  for (size_t c = 0; c < 3; ++c) {
    const Hyperedge& members = result.clusters[c];
    int64_t medoid = result.medoids[c];
    auto mean_dist = [&](int64_t candidate) {
      double total = 0.0;
      for (int64_t other : members) total += dist.at(candidate, other);
      return total / static_cast<double>(members.size());
    };
    double medoid_mean = mean_dist(medoid);
    for (int64_t candidate : members) {
      EXPECT_LE(medoid_mean, mean_dist(candidate) + 1e-6);
    }
  }
}

TEST(KMeansTest, KEqualsVGivesSingletons) {
  Tensor points = ClusteredPoints();
  Rng rng(58);
  KMeansResult result = KMeansClusters(points, 12, rng);
  EXPECT_EQ(result.clusters.size(), 12u);
  for (const Hyperedge& c : result.clusters) EXPECT_EQ(c.size(), 1u);
}

TEST(KMeansTest, KOneGivesEverything) {
  Tensor points = ClusteredPoints();
  Rng rng(59);
  KMeansResult result = KMeansClusters(points, 1, rng);
  ASSERT_EQ(result.clusters.size(), 1u);
  EXPECT_EQ(result.clusters[0].size(), 12u);
}

TEST(KMeansTest, DeterministicGivenSeed) {
  Tensor points = ClusteredPoints();
  Rng rng1(60), rng2(60);
  KMeansResult a = KMeansClusters(points, 3, rng1);
  KMeansResult b = KMeansClusters(points, 3, rng2);
  EXPECT_EQ(a.medoids, b.medoids);
  for (size_t c = 0; c < 3; ++c) EXPECT_EQ(a.clusters[c], b.clusters[c]);
}

TEST(KMeansTest, NoEmptyClustersEvenWithDuplicatePoints) {
  // All points identical: assignments collapse to cluster 0, the reseeding
  // logic must still emit k non-empty clusters.
  Tensor points = Tensor::Ones({6, 2});
  Rng rng(61);
  KMeansResult result = KMeansClusters(points, 3, rng);
  ASSERT_EQ(result.clusters.size(), 3u);
  for (const Hyperedge& c : result.clusters) EXPECT_FALSE(c.empty());
  std::set<int64_t> all;
  for (const Hyperedge& c : result.clusters) all.insert(c.begin(), c.end());
  EXPECT_EQ(all.size(), 6u);
}

TEST(KMeansHyperedgesTest, MatchesClusters) {
  Tensor points = ClusteredPoints();
  Rng rng1(62), rng2(62);
  std::vector<Hyperedge> edges = KMeansHyperedges(points, 3, rng1);
  KMeansResult result = KMeansClusters(points, 3, rng2);
  ASSERT_EQ(edges.size(), result.clusters.size());
  for (size_t c = 0; c < edges.size(); ++c) {
    EXPECT_EQ(edges[c], result.clusters[c]);
  }
}

}  // namespace
}  // namespace dhgcn
