#include "base/flags.h"

#include "gtest/gtest.h"

namespace dhgcn {
namespace {

struct ParsedFlags {
  int64_t count = 5;
  double rate = 0.5;
  std::string name = "default";
  bool verbose = false;
};

Status ParseInto(ParsedFlags& values, std::vector<const char*> args) {
  FlagSet flags("test");
  flags.AddInt64("count", &values.count, "a count");
  flags.AddDouble("rate", &values.rate, "a rate");
  flags.AddString("name", &values.name, "a name");
  flags.AddBool("verbose", &values.verbose, "verbosity");
  args.insert(args.begin(), "prog");
  return flags.Parse(static_cast<int>(args.size()), args.data());
}

TEST(FlagsTest, DefaultsSurviveEmptyParse) {
  ParsedFlags values;
  ASSERT_TRUE(ParseInto(values, {}).ok());
  EXPECT_EQ(values.count, 5);
  EXPECT_DOUBLE_EQ(values.rate, 0.5);
  EXPECT_EQ(values.name, "default");
  EXPECT_FALSE(values.verbose);
}

TEST(FlagsTest, EqualsSyntax) {
  ParsedFlags values;
  ASSERT_TRUE(
      ParseInto(values, {"--count=42", "--rate=0.25", "--name=foo"}).ok());
  EXPECT_EQ(values.count, 42);
  EXPECT_DOUBLE_EQ(values.rate, 0.25);
  EXPECT_EQ(values.name, "foo");
}

TEST(FlagsTest, SpaceSyntax) {
  ParsedFlags values;
  ASSERT_TRUE(ParseInto(values, {"--count", "7", "--name", "bar"}).ok());
  EXPECT_EQ(values.count, 7);
  EXPECT_EQ(values.name, "bar");
}

TEST(FlagsTest, BareBoolSetsTrue) {
  ParsedFlags values;
  ASSERT_TRUE(ParseInto(values, {"--verbose"}).ok());
  EXPECT_TRUE(values.verbose);
}

TEST(FlagsTest, BoolExplicitValues) {
  ParsedFlags values;
  ASSERT_TRUE(ParseInto(values, {"--verbose=true"}).ok());
  EXPECT_TRUE(values.verbose);
  ASSERT_TRUE(ParseInto(values, {"--verbose=false"}).ok());
  EXPECT_FALSE(values.verbose);
  ASSERT_TRUE(ParseInto(values, {"--verbose=1"}).ok());
  EXPECT_TRUE(values.verbose);
  EXPECT_FALSE(ParseInto(values, {"--verbose=maybe"}).ok());
}

TEST(FlagsTest, NegativeNumbers) {
  ParsedFlags values;
  ASSERT_TRUE(ParseInto(values, {"--count=-3", "--rate=-1.5"}).ok());
  EXPECT_EQ(values.count, -3);
  EXPECT_DOUBLE_EQ(values.rate, -1.5);
}

TEST(FlagsTest, UnknownFlagFails) {
  ParsedFlags values;
  Status status = ParseInto(values, {"--bogus=1"});
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("bogus"), std::string::npos);
}

TEST(FlagsTest, BadIntegerFails) {
  ParsedFlags values;
  EXPECT_FALSE(ParseInto(values, {"--count=abc"}).ok());
  EXPECT_FALSE(ParseInto(values, {"--count=12x"}).ok());
}

TEST(FlagsTest, MissingValueFails) {
  ParsedFlags values;
  EXPECT_FALSE(ParseInto(values, {"--count"}).ok());
}

TEST(FlagsTest, PositionalArgumentsCollected) {
  FlagSet flags("test");
  int64_t count = 0;
  flags.AddInt64("count", &count, "a count");
  const char* args[] = {"prog", "first", "--count=3", "second"};
  ASSERT_TRUE(flags.Parse(4, args).ok());
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "first");
  EXPECT_EQ(flags.positional()[1], "second");
}

TEST(FlagsTest, UsageListsFlagsAndDefaults) {
  FlagSet flags("mytool");
  int64_t epochs = 10;
  flags.AddInt64("epochs", &epochs, "training epochs");
  std::string usage = flags.Usage();
  EXPECT_NE(usage.find("mytool"), std::string::npos);
  EXPECT_NE(usage.find("--epochs"), std::string::npos);
  EXPECT_NE(usage.find("training epochs"), std::string::npos);
  EXPECT_NE(usage.find("default: 10"), std::string::npos);
}

}  // namespace
}  // namespace dhgcn
