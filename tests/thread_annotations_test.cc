// Runtime contracts of the annotated locking primitives in
// base/thread_annotations.h: Mutex exclusion, TryLock semantics,
// MutexLock scope behavior, and CondVar notify / bounded-wait behavior.
// The *compile-time* half of the contract (that -Wthread-safety rejects
// unlocked guarded access and lock-order inversion) lives in
// tests/compile_contracts/, registered only under clang.
//
// lint: allow-thread-file — the test spawns raw std::threads to contend
// on the wrapper under test; test code is outside the pool-only rule.

#include "base/thread_annotations.h"

#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace dhgcn {
namespace {

TEST(MutexTest, ExcludesConcurrentIncrements) {
  Mutex mu;
  int64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 25'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<int64_t>(kThreads) * kIncrements);
}

TEST(MutexTest, TryLockReportsContention) {
  Mutex mu;
  // Plain locals in plain branches (not gtest assertion wrappers) so the
  // thread-safety analysis can track the try-acquire result.
  bool first = mu.TryLock();
  EXPECT_TRUE(first);
  if (!first) return;
  // Re-try from another thread while held: must fail, not block.
  bool second = true;
  std::thread prober([&] {
    bool got = mu.TryLock();
    if (got) mu.Unlock();
    second = got;
  });
  prober.join();
  EXPECT_FALSE(second);
  mu.Unlock();
}

TEST(MutexLockTest, ReleasesAtScopeExit) {
  Mutex mu;
  {
    MutexLock lock(&mu);
  }
  // If the scoped lock leaked the capability this would deadlock (and
  // the test would time out) instead of succeeding.
  MutexLock reacquire(&mu);
  SUCCEED();
}

TEST(CondVarTest, NotifyWakesWaiter) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  bool observed = false;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
    observed = true;
  });
  {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyAll();
  }
  waiter.join();
  EXPECT_TRUE(observed);
}

TEST(CondVarTest, WaitForNanosReturnsOnTimeout) {
  Mutex mu;
  CondVar cv;
  bool never_set = false;
  MutexLock lock(&mu);
  // Nobody ever notifies: the bounded wait must still return (after
  // ~1 ms here), or this test would hang — that return-with-lock-held
  // guarantee is what the serve-wait lint rule builds on.
  for (int i = 0; i < 3 && !never_set; ++i) {
    cv.WaitForNanos(&mu, 1'000'000);
  }
  EXPECT_FALSE(never_set);
}

TEST(CondVarTest, WaitForNanosReacquiresLockBeforeReturning) {
  Mutex mu;
  CondVar cv;
  int64_t stage = 0;
  std::thread bumper([&] {
    MutexLock lock(&mu);
    stage = 1;
    cv.NotifyAll();
  });
  {
    MutexLock lock(&mu);
    while (stage != 1) cv.WaitForNanos(&mu, 1'000'000);
    // Holding mu again here: this write is ordered after the bumper's.
    stage = 2;
  }
  bumper.join();
  MutexLock lock(&mu);
  EXPECT_EQ(stage, 2);
}

}  // namespace
}  // namespace dhgcn
