// Positive control for the thread-safety compile contracts: correctly
// locked guarded state MUST compile clean under
// `-Wthread-safety -Wthread-safety-beta -Werror`. If this fixture fails,
// the negative fixtures prove nothing (any rejection could be noise
// from the macros themselves rather than a caught bug).
#include <cstdint>

#include "base/thread_annotations.h"

namespace {

class Guarded {
 public:
  void Increment() {
    dhgcn::MutexLock lock(&mu_);
    ++value_;
  }

  int64_t Snapshot() {
    dhgcn::MutexLock lock(&mu_);
    return value_;
  }

  // The annotated lock order, acquired in order: clean under -beta.
  void Nested() {
    dhgcn::MutexLock outer(&first_);
    dhgcn::MutexLock inner(&second_);
    ++ordered_;
  }

 private:
  dhgcn::Mutex mu_;
  int64_t value_ DHGCN_GUARDED_BY(mu_) = 0;

  dhgcn::Mutex first_ DHGCN_ACQUIRED_BEFORE(second_);
  dhgcn::Mutex second_;
  int64_t ordered_ DHGCN_GUARDED_BY(second_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.Increment();
  g.Nested();
  return static_cast<int>(g.Snapshot() - 1);
}
