// Negative fixture: MUST NOT compile under
// `-Wthread-safety -Wthread-safety-beta -Werror` (registered with
// WILL_FAIL in CTest). Acquires two mutexes against their declared
// DHGCN_ACQUIRED_BEFORE order — the static form of the lock-order
// inversion that guards InferenceServer's mu_ -> compute_mu_ ordering.
// Note the -beta flag is what enables the ordering checks; if this
// fixture compiles, lock-order verification has silently turned off.
#include "base/thread_annotations.h"

namespace {

class Ordered {
 public:
  void AcquireInOrder() {
    dhgcn::MutexLock outer(&first_);
    dhgcn::MutexLock inner(&second_);
  }

  void AcquireInverted() {
    dhgcn::MutexLock outer(&second_);
    dhgcn::MutexLock inner(&first_);  // violates first_ -> second_: error
  }

 private:
  dhgcn::Mutex first_ DHGCN_ACQUIRED_BEFORE(second_);
  dhgcn::Mutex second_;
};

}  // namespace

int main() {
  Ordered o;
  o.AcquireInOrder();
  o.AcquireInverted();
  return 0;
}
