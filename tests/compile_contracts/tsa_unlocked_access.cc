// Negative fixture: MUST NOT compile under
// `-Wthread-safety -Werror` (registered with WILL_FAIL in CTest).
// Writes a DHGCN_GUARDED_BY member without holding its mutex — exactly
// the bug class the annotations exist to turn into a build break. If
// this fixture ever compiles under clang, the analysis is not running
// and the whole thread-safety gate is vacuous.
#include <cstdint>

#include "base/thread_annotations.h"

namespace {

class Guarded {
 public:
  void IncrementWithoutLock() {
    ++value_;  // guarded by mu_, which is not held: analysis error
  }

 private:
  dhgcn::Mutex mu_;
  int64_t value_ DHGCN_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.IncrementWithoutLock();
  return 0;
}
