#include <algorithm>
#include <set>
#include <vector>

#include "gtest/gtest.h"

#include "base/check.h"
#include "base/result.h"
#include "base/rng.h"
#include "base/status.h"
#include "base/string_util.h"
#include "base/timer.h"

namespace dhgcn {
namespace {

// --- Status ---------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
  EXPECT_TRUE(status.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad k");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_EQ(status.message(), "bad k");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
}

TEST(StatusTest, CopySharesErrorState) {
  Status original = Status::Internal("boom");
  Status copy = original;
  EXPECT_EQ(copy.ToString(), original.ToString());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

// --- Result ---------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::NotFound("missing");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST(ResultTest, MoveValueTransfersOwnership) {
  Result<std::vector<int>> result = std::vector<int>{1, 2, 3};
  std::vector<int> value = result.MoveValue();
  EXPECT_EQ(value.size(), 3u);
}

namespace status_macro_helpers {

Result<int> MaybeValue(bool ok) {
  if (ok) return 7;
  return Status::InvalidArgument("nope");
}

Status UseAssignOrReturn(bool ok, int* out) {
  DHGCN_ASSIGN_OR_RETURN(int value, MaybeValue(ok));
  *out = value;
  return Status::OK();
}

Status UseReturnIfError(bool ok) {
  DHGCN_RETURN_IF_ERROR(UseAssignOrReturn(ok, &*std::make_unique<int>(0)));
  return Status::OK();
}

}  // namespace status_macro_helpers

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(status_macro_helpers::UseAssignOrReturn(true, &out).ok());
  EXPECT_EQ(out, 7);
  Status failed = status_macro_helpers::UseAssignOrReturn(false, &out);
  EXPECT_TRUE(failed.IsInvalidArgument());
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(status_macro_helpers::UseReturnIfError(true).ok());
  EXPECT_FALSE(status_macro_helpers::UseReturnIfError(false).ok());
}

// --- Rng --------------------------------------------------------------------

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FLOAT_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool any_different = false;
  for (int i = 0; i < 16 && !any_different; ++i) {
    any_different = a.Uniform() != b.Uniform();
  }
  EXPECT_TRUE(any_different);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformIntHitsAllValues) {
  Rng rng(6);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(7);
  std::vector<int64_t> perm = rng.Permutation(50);
  ASSERT_EQ(perm.size(), 50u);
  std::vector<int64_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (int64_t i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, PermutationZeroEmpty) {
  Rng rng(7);
  EXPECT_TRUE(rng.Permutation(0).empty());
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int64_t> sample = rng.SampleWithoutReplacement(25, 10);
    ASSERT_EQ(sample.size(), 10u);
    std::set<int64_t> distinct(sample.begin(), sample.end());
    EXPECT_EQ(distinct.size(), 10u);
    for (int64_t v : sample) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 25);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(9);
  std::vector<int64_t> sample = rng.SampleWithoutReplacement(6, 6);
  std::sort(sample.begin(), sample.end());
  for (int64_t i = 0; i < 6; ++i) EXPECT_EQ(sample[static_cast<size_t>(i)], i);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(13);
  Rng child = parent.Split();
  // The child stream should not reproduce the parent stream.
  Rng parent_again(13);
  // lint: allow-discard — Split() is called to advance the parent state.
  (void)parent_again.Split();
  bool differs = false;
  for (int i = 0; i < 8 && !differs; ++i) {
    differs = child.Uniform() != parent.Uniform();
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, BernoulliRespectsProbabilityRoughly) {
  Rng rng(21);
  int hits = 0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.25f) ? 1 : 0;
  double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.25, 0.04);
}

TEST(RngTest, NormalHasRoughMoments) {
  Rng rng(31);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 8000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(2.0f, 3.0f);
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.15);
  EXPECT_NEAR(var, 9.0, 0.8);
}

// --- String utils -----------------------------------------------------------

TEST(StringUtilTest, StrCatMixedTypes) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringUtilTest, StrJoin) {
  std::vector<int> items = {1, 2, 3};
  EXPECT_EQ(StrJoin(items, ", "), "1, 2, 3");
  EXPECT_EQ(StrJoin(std::vector<int>{}, ","), "");
}

TEST(StringUtilTest, StrSplitKeepsEmptyFields) {
  std::vector<std::string> parts = StrSplit("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, FormatFixedAndPercent) {
  EXPECT_EQ(FormatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(FormatFixed(2.0, 0), "2");
  EXPECT_EQ(FormatPercent(0.875), "87.5");
  EXPECT_EQ(FormatPercent(1.0), "100.0");
}

// --- Timer ------------------------------------------------------------------

TEST(TimerTest, ElapsedIsMonotonic) {
  WallTimer timer;
  double t1 = timer.ElapsedSeconds();
  double t2 = timer.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  timer.Reset();
  EXPECT_GE(timer.ElapsedMillis(), 0.0);
}

// --- Check macros (death tests) ---------------------------------------------

TEST(CheckDeathTest, CheckFailsOnFalse) {
  EXPECT_DEATH(DHGCN_CHECK(1 == 2), "DHGCN_CHECK failed");
}

TEST(CheckDeathTest, CheckEqReportsValues) {
  int a = 3, b = 4;
  EXPECT_DEATH(DHGCN_CHECK_EQ(a, b), "3 vs. 4");
}

TEST(CheckDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(DHGCN_CHECK_OK(Status::Internal("kaput")), "kaput");
}

}  // namespace
}  // namespace dhgcn
