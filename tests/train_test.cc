#include <cstdlib>

#include "gtest/gtest.h"

#include "base/rng.h"
#include "tensor/tensor_ops.h"
#include "models/model_zoo.h"
#include "train/evaluator.h"
#include "train/experiment.h"
#include "train/metrics.h"
#include "train/table.h"
#include "train/trainer.h"

namespace dhgcn {
namespace {

// --- Metrics ---------------------------------------------------------------------

TEST(TopKAccuracyTest, Top1Manual) {
  Tensor logits = Tensor::FromVector({3, 3},
                                     {5, 1, 0,    // pred 0
                                      0, 2, 9,    // pred 2
                                      1, 8, 3});  // pred 1
  EXPECT_DOUBLE_EQ(TopKAccuracy(logits, {0, 2, 1}, 1), 1.0);
  EXPECT_DOUBLE_EQ(TopKAccuracy(logits, {1, 2, 1}, 1), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(TopKAccuracy(logits, {1, 1, 2}, 1), 0.0);
}

TEST(TopKAccuracyTest, Top2CountsRunnerUp) {
  Tensor logits = Tensor::FromVector({2, 3}, {5, 4, 0, 1, 2, 3});
  EXPECT_DOUBLE_EQ(TopKAccuracy(logits, {1, 1}, 2), 1.0);
  EXPECT_DOUBLE_EQ(TopKAccuracy(logits, {2, 0}, 2), 0.0);
}

TEST(TopKAccuracyTest, TieBreaksTowardLowerIndex) {
  Tensor logits = Tensor::FromVector({1, 3}, {1, 1, 0});
  // Class 0 and 1 tie; top-1 counts class 0 as the prediction.
  EXPECT_DOUBLE_EQ(TopKAccuracy(logits, {0}, 1), 1.0);
  EXPECT_DOUBLE_EQ(TopKAccuracy(logits, {1}, 1), 0.0);
  EXPECT_DOUBLE_EQ(TopKAccuracy(logits, {1}, 2), 1.0);
}

TEST(MetricsAccumulatorTest, AggregatesAcrossBatches) {
  MetricsAccumulator accumulator;
  Tensor batch1 = Tensor::FromVector({2, 6}, {9, 0, 0, 0, 0, 0,   // hit
                                              0, 9, 0, 0, 0, 0}); // hit
  accumulator.Add(batch1, {0, 1}, 0.5);
  Tensor batch2 = Tensor::FromVector({1, 6}, {0, 0, 0, 0, 0, 9});
  accumulator.Add(batch2, {0}, 1.5);  // top1 miss, top5 miss (label 0 is
                                      // ranked 2nd among ties 0..4 -> hit)
  EvalMetrics metrics = accumulator.Finalize();
  EXPECT_EQ(metrics.count, 3);
  EXPECT_NEAR(metrics.top1, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(metrics.top5, 1.0, 1e-9);  // label 0 within top-5 of batch2
  EXPECT_NEAR(metrics.loss, 1.0, 1e-9);
}

TEST(MetricsAccumulatorTest, EmptyFinalizeIsZero) {
  MetricsAccumulator accumulator;
  EvalMetrics metrics = accumulator.Finalize();
  EXPECT_EQ(metrics.count, 0);
  EXPECT_DOUBLE_EQ(metrics.top1, 0.0);
}

TEST(ConfusionMatrixTest, CountsPredictions) {
  Tensor logits = Tensor::FromVector({3, 2}, {2, 1, 1, 2, 2, 1});
  Tensor confusion = ConfusionMatrix(logits, {0, 0, 1}, 2);
  EXPECT_FLOAT_EQ(confusion.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(confusion.at(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(confusion.at(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(confusion.at(1, 1), 0.0f);
}

// --- TextTable -------------------------------------------------------------------

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable table({"Method", "Top1"});
  table.AddRow({"ST-GCN", "30.7"});
  table.AddRow({"DHGCN(Ours)", "37.7"});
  std::string text = table.ToString();
  EXPECT_NE(text.find("| Method      | Top1 |"), std::string::npos);
  EXPECT_NE(text.find("| DHGCN(Ours) | 37.7 |"), std::string::npos);
  EXPECT_NE(text.find("+-------------+------+"), std::string::npos);
}

TEST(TextTableTest, SeparatorRows) {
  TextTable table({"A"});
  table.AddRow({"1"});
  table.AddSeparator();
  table.AddRow({"2"});
  std::string text = table.ToString();
  // Header line + top + below-header + separator + bottom = 4 rules.
  size_t count = 0;
  for (size_t pos = text.find("+---"); pos != std::string::npos;
       pos = text.find("+---", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 4u);
}

TEST(TextTableDeathTest, RowWidthMismatch) {
  TextTable table({"A", "B"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "DHGCN_CHECK");
}

// --- Experiment helpers -------------------------------------------------------------

TEST(SplitProtocolTest, Names) {
  EXPECT_EQ(SplitProtocolName(SplitProtocol::kCrossSubject), "X-Sub");
  EXPECT_EQ(SplitProtocolName(SplitProtocol::kCrossView), "X-View");
  EXPECT_EQ(SplitProtocolName(SplitProtocol::kCrossSetup), "X-Set");
  EXPECT_EQ(SplitProtocolName(SplitProtocol::kRandom), "holdout");
}

TEST(BenchScaleTest, EnvironmentOverrides) {
  // Note: test mutates the environment; restore afterwards.
  const char* saved = std::getenv("DHGCN_BENCH_SCALE");
  setenv("DHGCN_BENCH_SCALE", "smoke", 1);
  BenchScale smoke = GetBenchScale();
  EXPECT_EQ(smoke.name, "smoke");
  EXPECT_LT(smoke.epochs, 5);
  setenv("DHGCN_BENCH_SCALE", "full", 1);
  BenchScale full = GetBenchScale();
  EXPECT_EQ(full.name, "full");
  EXPECT_GT(full.epochs, smoke.epochs);
  unsetenv("DHGCN_BENCH_SCALE");
  BenchScale normal = GetBenchScale();
  EXPECT_EQ(normal.name, "default");
  if (saved != nullptr) setenv("DHGCN_BENCH_SCALE", saved, 1);
}

TEST(BenchTrainOptionsTest, MilestonesInsideSchedule) {
  BenchScale scale;
  scale.epochs = 10;
  TrainOptions options = BenchTrainOptions(scale);
  EXPECT_EQ(options.epochs, 10);
  ASSERT_EQ(options.lr_milestones.size(), 2u);
  EXPECT_EQ(options.lr_milestones[0], 6);
  EXPECT_EQ(options.lr_milestones[1], 8);
}

// --- Trainer end-to-end on a tiny separable dataset ------------------------------------

SkeletonDataset TinyDataset() {
  SyntheticDataConfig config = NtuLikeConfig(3, 10, 12, 99);
  config.sensor_noise = 0.005f;
  return SkeletonDataset::Generate(config).MoveValue();
}

TEST(TrainerTest, LossDecreasesOverEpochs) {
  SkeletonDataset dataset = TinyDataset();
  DatasetSplit split = dataset.RandomSplit(0.3f, 1);
  DataLoader loader(&dataset, split.train, 8, InputStream::kJoint,
                    /*shuffle=*/true, Rng(2));
  ModelZooOptions zoo;
  zoo.scale.channels = {8, 16};
  zoo.scale.strides = {1, 2};
  zoo.scale.dropout = 0.0f;
  LayerPtr model =
      CreateModel(ModelKind::kStgcn, SkeletonLayoutType::kNtu25, 3, zoo);
  TrainOptions options;
  options.epochs = 6;
  options.initial_lr = 0.05f;
  options.lr_milestones = {4};
  Trainer trainer(model.get(), options);
  Result<std::vector<EpochStats>> train_result = trainer.Train(loader);
  ASSERT_TRUE(train_result.ok()) << train_result.status();
  std::vector<EpochStats> history = train_result.MoveValue();
  ASSERT_EQ(history.size(), 6u);
  EXPECT_LT(history.back().mean_loss, history.front().mean_loss);
  EXPECT_GT(history.back().train_top1, 0.4);
}

TEST(TrainerTest, LrFollowsSchedule) {
  SkeletonDataset dataset = TinyDataset();
  DatasetSplit split = dataset.RandomSplit(0.3f, 1);
  DataLoader loader(&dataset, split.train, 16, InputStream::kJoint, true,
                    Rng(3));
  ModelZooOptions zoo;
  zoo.scale.channels = {4};
  zoo.scale.strides = {1};
  zoo.scale.dropout = 0.0f;
  LayerPtr model =
      CreateModel(ModelKind::kTcn, SkeletonLayoutType::kNtu25, 3, zoo);
  TrainOptions options;
  options.epochs = 4;
  options.initial_lr = 0.1f;
  options.lr_milestones = {2};
  Trainer trainer(model.get(), options);
  Result<std::vector<EpochStats>> train_result = trainer.Train(loader);
  ASSERT_TRUE(train_result.ok()) << train_result.status();
  std::vector<EpochStats> history = train_result.MoveValue();
  EXPECT_FLOAT_EQ(static_cast<float>(history[0].lr), 0.1f);
  EXPECT_FLOAT_EQ(static_cast<float>(history[1].lr), 0.1f);
  EXPECT_FLOAT_EQ(static_cast<float>(history[2].lr), 0.01f);
  EXPECT_FLOAT_EQ(static_cast<float>(history[3].lr), 0.01f);
}

// --- Checkpoint / resume ---------------------------------------------------------

namespace resume_test {

LayerPtr MakeModel() {
  ModelZooOptions zoo;
  zoo.scale.channels = {8, 16};
  zoo.scale.strides = {1, 2};
  zoo.scale.dropout = 0.0f;
  return CreateModel(ModelKind::kStgcn, SkeletonLayoutType::kNtu25, 3, zoo);
}

TrainOptions MakeOptions() {
  TrainOptions options;
  options.epochs = 6;
  options.initial_lr = 0.05f;
  options.lr_milestones = {4};
  return options;
}

}  // namespace resume_test

// The acceptance bar for checkpoint v2: kill a run mid-schedule, resume
// it in a fresh process (fresh model, fresh optimizer, fresh loader), and
// reproduce the uninterrupted run's final parameters bit-for-bit.
TEST(TrainerResumeTest, ResumedRunIsBitExactWithUninterrupted) {
  std::string path = ::testing::TempDir() + "/resume_bitexact.ckpt";
  std::remove(path.c_str());
  SkeletonDataset dataset = TinyDataset();
  DatasetSplit split = dataset.RandomSplit(0.3f, 1);

  // Uninterrupted reference run.
  LayerPtr straight = resume_test::MakeModel();
  {
    DataLoader loader(&dataset, split.train, 8, InputStream::kJoint,
                      /*shuffle=*/true, Rng(2));
    Trainer trainer(straight.get(), resume_test::MakeOptions());
    ASSERT_TRUE(trainer.Train(loader).ok());
  }

  // Same schedule, but the process "dies" after 3 epochs...
  LayerPtr killed = resume_test::MakeModel();
  {
    DataLoader loader(&dataset, split.train, 8, InputStream::kJoint,
                      /*shuffle=*/true, Rng(2));
    Trainer trainer(killed.get(), resume_test::MakeOptions());
    ResumeOptions resume;
    resume.checkpoint_path = path;
    resume.stop_after_epochs = 3;
    ResumedTraining first = trainer.TrainWithResume(loader, resume)
                                .ValueOrDie();
    EXPECT_FALSE(first.resumed);
    EXPECT_EQ(first.completed_epochs, 3);
  }
  // ...and a brand-new trainer picks the checkpoint up.
  LayerPtr revived = resume_test::MakeModel();
  {
    DataLoader loader(&dataset, split.train, 8, InputStream::kJoint,
                      /*shuffle=*/true, Rng(2));
    Trainer trainer(revived.get(), resume_test::MakeOptions());
    ResumeOptions resume;
    resume.checkpoint_path = path;
    ResumedTraining second = trainer.TrainWithResume(loader, resume)
                                 .ValueOrDie();
    EXPECT_TRUE(second.resumed);
    EXPECT_EQ(second.start_epoch, 3);
    EXPECT_EQ(second.completed_epochs, 6);
    ASSERT_EQ(second.history.size(), 3u);
    EXPECT_EQ(second.history.front().epoch, 3);
  }

  std::vector<ParamRef> expected = straight->Params();
  std::vector<ParamRef> actual = revived->Params();
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_TRUE(AllClose(*actual[i].value, *expected[i].value, 0.0f, 0.0f))
        << "parameter " << expected[i].name << " diverged after resume";
  }
  std::remove(path.c_str());
}

TEST(TrainerResumeTest, AdamStateSurvivesResume) {
  std::string path = ::testing::TempDir() + "/resume_adam.ckpt";
  std::remove(path.c_str());
  SkeletonDataset dataset = TinyDataset();
  DatasetSplit split = dataset.RandomSplit(0.3f, 1);
  TrainOptions options = resume_test::MakeOptions();
  options.optimizer = OptimizerKind::kAdam;
  options.initial_lr = 1e-3f;
  options.epochs = 4;

  LayerPtr straight = resume_test::MakeModel();
  {
    DataLoader loader(&dataset, split.train, 8, InputStream::kJoint, true,
                      Rng(2));
    Trainer trainer(straight.get(), options);
    ASSERT_TRUE(trainer.Train(loader).ok());
  }
  LayerPtr revived = resume_test::MakeModel();
  {
    DataLoader loader(&dataset, split.train, 8, InputStream::kJoint, true,
                      Rng(2));
    Trainer trainer(revived.get(), options);
    ResumeOptions resume;
    resume.checkpoint_path = path;
    resume.stop_after_epochs = 2;
    ASSERT_TRUE(trainer.TrainWithResume(loader, resume).ok());
  }
  {
    DataLoader loader(&dataset, split.train, 8, InputStream::kJoint, true,
                      Rng(2));
    Trainer trainer(revived.get(), options);
    ResumeOptions resume;
    resume.checkpoint_path = path;
    ASSERT_TRUE(trainer.TrainWithResume(loader, resume).ok());
  }
  std::vector<ParamRef> expected = straight->Params();
  std::vector<ParamRef> actual = revived->Params();
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_TRUE(AllClose(*actual[i].value, *expected[i].value, 0.0f, 0.0f))
        << "parameter " << expected[i].name << " diverged after resume";
  }
  std::remove(path.c_str());
}

TEST(TrainerResumeTest, OptimizerMismatchIsDescriptiveError) {
  std::string path = ::testing::TempDir() + "/resume_mismatch.ckpt";
  std::remove(path.c_str());
  SkeletonDataset dataset = TinyDataset();
  DatasetSplit split = dataset.RandomSplit(0.3f, 1);

  LayerPtr model = resume_test::MakeModel();
  {
    DataLoader loader(&dataset, split.train, 8, InputStream::kJoint, true,
                      Rng(2));
    Trainer trainer(model.get(), resume_test::MakeOptions());
    ResumeOptions resume;
    resume.checkpoint_path = path;
    resume.stop_after_epochs = 1;
    ASSERT_TRUE(trainer.TrainWithResume(loader, resume).ok());
  }
  TrainOptions adam_options = resume_test::MakeOptions();
  adam_options.optimizer = OptimizerKind::kAdam;
  LayerPtr other = resume_test::MakeModel();
  DataLoader loader(&dataset, split.train, 8, InputStream::kJoint, true,
                    Rng(2));
  Trainer trainer(other.get(), adam_options);
  ResumeOptions resume;
  resume.checkpoint_path = path;
  Result<ResumedTraining> resumed = trainer.TrainWithResume(loader, resume);
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(resumed.status().message().find("optimizer"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TrainerResumeTest, RejectsBadResumeOptions) {
  SkeletonDataset dataset = TinyDataset();
  DatasetSplit split = dataset.RandomSplit(0.3f, 1);
  LayerPtr model = resume_test::MakeModel();
  DataLoader loader(&dataset, split.train, 8, InputStream::kJoint, true,
                    Rng(2));
  Trainer trainer(model.get(), resume_test::MakeOptions());
  EXPECT_FALSE(trainer.TrainWithResume(loader, ResumeOptions{}).ok());
  ResumeOptions bad_cadence;
  bad_cadence.checkpoint_path = ::testing::TempDir() + "/never.ckpt";
  bad_cadence.checkpoint_every = 0;
  EXPECT_FALSE(trainer.TrainWithResume(loader, bad_cadence).ok());
}

TEST(EvaluatorTest, MetricsOnHeldOutData) {
  SkeletonDataset dataset = TinyDataset();
  DatasetSplit split = dataset.RandomSplit(0.3f, 1);
  ModelZooOptions zoo;
  zoo.scale.channels = {8, 16, 24};
  zoo.scale.strides = {1, 2, 1};
  zoo.scale.dropout = 0.0f;
  LayerPtr model =
      CreateModel(ModelKind::kStgcn, SkeletonLayoutType::kNtu25, 3, zoo);
  TrainOptions train_options;
  train_options.epochs = 28;
  train_options.initial_lr = 0.05f;
  train_options.lr_milestones = {16, 22};
  train_options.lr_decay_factor = 10.0f;
  train_options.momentum = 0.9f;
  train_options.weight_decay = 1e-4f;
  train_options.verbose = false;
  EvalMetrics metrics = TrainAndEvaluateStream(
      *model, dataset, split, InputStream::kJoint, train_options, 8, 7);
  EXPECT_EQ(metrics.count, static_cast<int64_t>(split.test.size()));
  // 3 well-separated synthetic classes: should beat chance comfortably.
  EXPECT_GT(metrics.top1, 0.45);
  EXPECT_GE(metrics.top5, metrics.top1);
}

TEST(EvaluatorTest, FusedConsistencyChecks) {
  SkeletonDataset dataset = TinyDataset();
  DatasetSplit split = dataset.RandomSplit(0.3f, 1);
  ModelZooOptions zoo;
  zoo.scale.channels = {4};
  zoo.scale.strides = {1};
  zoo.scale.dropout = 0.0f;
  LayerPtr joint_model =
      CreateModel(ModelKind::kStgcn, SkeletonLayoutType::kNtu25, 3, zoo);
  LayerPtr bone_model =
      CreateModel(ModelKind::kStgcn, SkeletonLayoutType::kNtu25, 3, zoo);
  DataLoader joint_loader(&dataset, split.test, 8, InputStream::kJoint,
                          false);
  DataLoader bone_loader(&dataset, split.test, 8, InputStream::kBone,
                         false);
  EvalMetrics fused =
      EvaluateFused(*joint_model, *bone_model, joint_loader, bone_loader);
  EXPECT_EQ(fused.count, static_cast<int64_t>(split.test.size()));
  EXPECT_GE(fused.top5, fused.top1);
}

}  // namespace
}  // namespace dhgcn
