#include "data/augmentations.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "gtest/gtest.h"

#include "data/csv_io.h"
#include "data/skeleton.h"
#include "data/synthetic_generator.h"
#include "tensor/tensor_ops.h"

namespace dhgcn {
namespace {

Tensor MakeSample(uint64_t seed = 1) {
  Rng rng(seed);
  return Tensor::RandomNormal({3, 6, 10}, rng);
}

double PairDistance(const Tensor& x, int64_t t, int64_t a, int64_t b) {
  double acc = 0.0;
  for (int64_t c = 0; c < 3; ++c) {
    double diff = x.at(c, t, a) - x.at(c, t, b);
    acc += diff * diff;
  }
  return std::sqrt(acc);
}

// --- RandomRotationY -------------------------------------------------------

TEST(RotationTest, PreservesPairwiseDistances) {
  Tensor sample = MakeSample();
  Rng rng(2);
  Tensor rotated = RandomRotationY(sample, 1.0f, rng);
  for (int64_t t = 0; t < 6; ++t) {
    for (int64_t a = 0; a < 10; ++a) {
      for (int64_t b = a + 1; b < 10; b += 3) {
        EXPECT_NEAR(PairDistance(rotated, t, a, b),
                    PairDistance(sample, t, a, b), 1e-4);
      }
    }
  }
}

TEST(RotationTest, LeavesYCoordinateUnchanged) {
  Tensor sample = MakeSample();
  Rng rng(3);
  Tensor rotated = RandomRotationY(sample, 1.0f, rng);
  for (int64_t t = 0; t < 6; ++t) {
    for (int64_t j = 0; j < 10; ++j) {
      EXPECT_FLOAT_EQ(rotated.at(1, t, j), sample.at(1, t, j));
    }
  }
}

TEST(RotationTest, ZeroAngleIsIdentity) {
  Tensor sample = MakeSample();
  Rng rng(4);
  Tensor rotated = RandomRotationY(sample, 0.0f, rng);
  EXPECT_TRUE(AllClose(rotated, sample, 1e-6f, 1e-7f));
}

// --- RandomScale -----------------------------------------------------------

TEST(ScaleTest, ScalesAllCoordinatesUniformly) {
  Tensor sample = MakeSample();
  Rng rng(5);
  Tensor scaled = RandomScale(sample, 2.0f, 2.0f, rng);  // exactly 2x
  for (int64_t i = 0; i < sample.numel(); ++i) {
    EXPECT_NEAR(scaled.flat(i), 2.0f * sample.flat(i), 1e-5f);
  }
}

TEST(ScaleTest, FactorWithinBounds) {
  Tensor sample = Tensor::Ones({3, 2, 2});
  Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    Tensor scaled = RandomScale(sample, 0.9f, 1.1f, rng);
    float factor = scaled.at(0, 0, 0);
    EXPECT_GE(factor, 0.9f);
    EXPECT_LE(factor, 1.1f);
  }
}

// --- RandomTemporalCrop ------------------------------------------------------

TEST(TemporalCropTest, PreservesShape) {
  Tensor sample = MakeSample();
  Rng rng(7);
  Tensor cropped = RandomTemporalCrop(sample, 4, rng);
  EXPECT_EQ(cropped.shape(), sample.shape());
}

TEST(TemporalCropTest, FullWindowIsIdentity) {
  Tensor sample = MakeSample();
  Rng rng(8);
  Tensor cropped = RandomTemporalCrop(sample, 6, rng);
  EXPECT_TRUE(AllClose(cropped, sample));
}

TEST(TemporalCropTest, OutputFramesComeFromWindow) {
  // Frames hold their own index; after cropping to [start, start+3) the
  // output can only contain values from that window.
  Tensor sample({3, 8, 1});
  for (int64_t t = 0; t < 8; ++t) {
    for (int64_t c = 0; c < 3; ++c) sample.at(c, t, 0) = float(t);
  }
  Rng rng(9);
  Tensor cropped = RandomTemporalCrop(sample, 3, rng);
  float lo = cropped.at(0, 0, 0);
  for (int64_t t = 0; t < 8; ++t) {
    float v = cropped.at(0, t, 0);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, lo + 2.0f);
  }
}

// --- JointJitter ---------------------------------------------------------------

TEST(JitterTest, NoiseHasRequestedScale) {
  Tensor sample({3, 50, 25});
  Rng rng(10);
  Tensor jittered = JointJitter(sample, 0.1f, rng);
  double sum_sq = 0.0;
  for (int64_t i = 0; i < jittered.numel(); ++i) {
    sum_sq += static_cast<double>(jittered.flat(i)) * jittered.flat(i);
  }
  double std_dev =
      std::sqrt(sum_sq / static_cast<double>(jittered.numel()));
  EXPECT_NEAR(std_dev, 0.1, 0.01);
}

// --- RandomJointDropout -----------------------------------------------------------

TEST(JointDropoutTest, ZeroesWholeJointColumns) {
  Tensor sample = Tensor::Ones({3, 40, 20});
  Rng rng(11);
  Tensor dropped = RandomJointDropout(sample, 0.25f, rng);
  int64_t zero_columns = 0, total = 0;
  for (int64_t t = 0; t < 40; ++t) {
    for (int64_t j = 0; j < 20; ++j) {
      ++total;
      bool all_zero = dropped.at(0, t, j) == 0.0f &&
                      dropped.at(1, t, j) == 0.0f &&
                      dropped.at(2, t, j) == 0.0f;
      bool all_one = dropped.at(0, t, j) == 1.0f &&
                     dropped.at(1, t, j) == 1.0f &&
                     dropped.at(2, t, j) == 1.0f;
      EXPECT_TRUE(all_zero || all_one);  // columns drop atomically
      if (all_zero) ++zero_columns;
    }
  }
  EXPECT_NEAR(static_cast<double>(zero_columns) / static_cast<double>(total),
              0.25, 0.05);
}

// --- Pipeline ---------------------------------------------------------------------

TEST(PipelineTest, AppliesStepsInOrder) {
  AugmentationPipeline pipeline;
  pipeline
      .Add([](const Tensor& x, Rng&) { return AddScalar(x, 1.0f); })
      .Add([](const Tensor& x, Rng&) { return MulScalar(x, 2.0f); });
  Rng rng(12);
  Tensor out = pipeline.Apply(Tensor::Zeros({3, 1, 1}), rng);
  EXPECT_FLOAT_EQ(out.flat(0), 2.0f);  // (0 + 1) * 2
  EXPECT_EQ(pipeline.size(), 2u);
}

TEST(PipelineTest, EmptyPipelineIsIdentity) {
  AugmentationPipeline pipeline;
  Rng rng(13);
  Tensor sample = MakeSample();
  EXPECT_TRUE(AllClose(pipeline.Apply(sample, rng), sample));
}

TEST(PipelineTest, StandardPipelinePreservesShapeAndFiniteness) {
  AugmentationPipeline pipeline = AugmentationPipeline::Standard(6);
  Rng rng(14);
  Tensor sample = MakeSample();
  for (int trial = 0; trial < 5; ++trial) {
    Tensor out = pipeline.Apply(sample, rng);
    EXPECT_EQ(out.shape(), sample.shape());
    EXPECT_FALSE(HasNonFinite(out));
  }
}

// --- CSV dataset round-trip (exercised here since both are data I/O) ---------

TEST(CsvIoTest, RoundTripPreservesDataset) {
  SyntheticDataConfig config = NtuLikeConfig(3, 4, 6, 33);
  SkeletonDataset original = SkeletonDataset::Generate(config).MoveValue();
  std::string path = ::testing::TempDir() + "/roundtrip.csv";
  ASSERT_TRUE(SaveDatasetCsv(path, original).ok());
  Result<SkeletonDataset> loaded = LoadDatasetCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), original.size());
  EXPECT_EQ(loaded->num_classes(), original.num_classes());
  EXPECT_EQ(loaded->layout_type(), original.layout_type());
  for (int64_t i = 0; i < original.size(); ++i) {
    const SkeletonSample& a = original.sample(i);
    const SkeletonSample& b = loaded->sample(i);
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.subject, b.subject);
    EXPECT_EQ(a.camera, b.camera);
    EXPECT_EQ(a.setup, b.setup);
    EXPECT_TRUE(AllClose(a.data, b.data, 1e-4f, 1e-5f));
  }
  std::remove(path.c_str());
}

TEST(CsvIoTest, RejectsGarbage) {
  std::string path = ::testing::TempDir() + "/garbage.csv";
  {
    std::ofstream os(path);
    os << "not a dataset\n1,2,3\n";
  }
  EXPECT_FALSE(LoadDatasetCsv(path).ok());
  std::remove(path.c_str());
}

TEST(CsvIoTest, RejectsWrongColumnCount) {
  std::string path = ::testing::TempDir() + "/short.csv";
  {
    std::ofstream os(path);
    os << "# dhgcn-dataset v1 layout=ntu25 classes=2 frames=4\n";
    os << "0,0,0,0,1.0,2.0\n";  // far too few data columns
  }
  Result<SkeletonDataset> loaded = LoadDatasetCsv(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dhgcn
