// End-to-end tests for the fault-tolerant serving core: correctness
// against a direct forward pass, batch transparency, poison isolation,
// deadline expiry, degradation/recovery, watchdog health, drain on
// shutdown, and a multi-client stress run (the TSan target).
//
// lint: allow-thread-file — the stress test spawns client threads and
// the expiry tests sleep on real time; serving is the reviewed
// concurrency exception (DESIGN.md §11).

#include "serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <thread>
#include <vector>

#include "base/fault_injection.h"
#include "base/rng.h"
#include "nn/layer.h"
#include "serve/clock.h"
#include "tensor/workspace.h"

namespace dhgcn {
namespace {

constexpr int64_t kMs = 1'000'000;
constexpr int64_t kFrames = 8;

DhgcnConfig TestConfig() {
  DhgcnConfig config =
      DhgcnConfig::Tiny(SkeletonLayoutType::kNtu25, /*num_classes=*/4);
  return config;
}

ServerOptions TestOptions() {
  ServerOptions options;
  options.worker_count = 1;
  options.batcher.queue_capacity = 16;
  options.batcher.max_batch_size = 4;
  options.batcher.batch_delay_ns = 1 * kMs;
  options.default_deadline_ns = 2'000 * kMs;  // generous: tests control
  return options;
}

Tensor MakeClip(const FrozenModel& model, uint64_t seed) {
  Rng rng(seed);
  Tensor clip({model.config().in_channels, model.frames(),
               model.num_joints()});
  for (int64_t i = 0; i < clip.numel(); ++i) clip.flat(i) = rng.Normal();
  return clip;
}

class ServeServerTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjection::Get().Reset(); }
  void TearDown() override { FaultInjection::Get().Reset(); }
};

TEST_F(ServeServerTest, RejectsInvalidOptions) {
  ServerOptions options = TestOptions();
  options.worker_count = 0;
  auto server = InferenceServer::Create("", TestConfig(), kFrames, options);
  EXPECT_FALSE(server.ok());
  options = TestOptions();
  options.batcher.max_batch_size = options.batcher.queue_capacity + 1;
  server = InferenceServer::Create("", TestConfig(), kFrames, options);
  EXPECT_FALSE(server.ok());
}

TEST_F(ServeServerTest, InferMatchesDirectForward) {
  DhgcnConfig config = TestConfig();
  auto server =
      InferenceServer::Create("", config, kFrames, TestOptions());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const FrozenModel& served = (*server)->model();
  Tensor clip = MakeClip(served, /*seed=*/3);

  ServeResponse response = (*server)->Infer(clip, SubmitOptions());
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  ASSERT_EQ(response.logits.ndim(), 1);
  ASSERT_EQ(response.logits.dim(0), served.num_classes());
  EXPECT_EQ(response.batch_size, 1);
  EXPECT_GT(response.total_ns, 0);

  // Same config + same seed => an identical reference model.
  auto reference = FrozenModel::Load("", config, kFrames);
  ASSERT_TRUE(reference.ok());
  Workspace ws;
  Tensor batch({1, config.in_channels, kFrames, served.num_joints()});
  for (int64_t i = 0; i < clip.numel(); ++i) batch.flat(i) = clip.flat(i);
  Tensor expected = (*reference)->Forward(batch, ws);
  for (int64_t c = 0; c < served.num_classes(); ++c) {
    EXPECT_EQ(response.logits.flat(c), expected.flat(c)) << "class " << c;
  }
}

TEST_F(ServeServerTest, BatchedForwardIsTransparent) {
  // Rows of a stacked micro-batch must bit-match the same clips run
  // alone — K-means reseeds per frame, not per batch row, so batching
  // is invisible to the caller.
  DhgcnConfig config = TestConfig();
  auto model = FrozenModel::Load("", config, kFrames);
  ASSERT_TRUE(model.ok());
  int64_t v = (*model)->num_joints();
  int64_t numel = (*model)->clip_numel();

  std::vector<Tensor> clips;
  for (uint64_t s = 0; s < 3; ++s) clips.push_back(MakeClip(**model, s));

  Tensor stacked({3, config.in_channels, kFrames, v});
  for (int64_t b = 0; b < 3; ++b) {
    for (int64_t i = 0; i < numel; ++i) {
      stacked.flat(b * numel + i) = clips[static_cast<size_t>(b)].flat(i);
    }
  }
  Workspace batch_ws;
  Tensor batched = (*model)->Forward(stacked, batch_ws);

  for (int64_t b = 0; b < 3; ++b) {
    Tensor single({1, config.in_channels, kFrames, v});
    for (int64_t i = 0; i < numel; ++i) {
      single.flat(i) = clips[static_cast<size_t>(b)].flat(i);
    }
    Workspace ws;
    Tensor alone = (*model)->Forward(single, ws);
    for (int64_t c = 0; c < (*model)->num_classes(); ++c) {
      EXPECT_EQ(batched.flat(b * (*model)->num_classes() + c),
                alone.flat(c))
          << "row " << b << " class " << c;
    }
  }
}

TEST_F(ServeServerTest, RejectsWrongShapeSynchronously) {
  auto server =
      InferenceServer::Create("", TestConfig(), kFrames, TestOptions());
  ASSERT_TRUE(server.ok());
  Tensor bad({3, kFrames + 1, (*server)->model().num_joints()});
  ServeResponse response = (*server)->Infer(bad, SubmitOptions());
  EXPECT_TRUE(response.status.IsInvalidArgument());
  EXPECT_EQ((*server)->Stats().admitted, 0);
}

TEST_F(ServeServerTest, PoisonedClipFailsAloneBatchmatesSucceed) {
  DhgcnConfig config = TestConfig();
  ServerOptions options = TestOptions();
  options.batcher.batch_delay_ns = 20 * kMs;  // coalesce the pair
  auto server = InferenceServer::Create("", config, kFrames, options);
  ASSERT_TRUE(server.ok());
  Tensor good = MakeClip((*server)->model(), 5);
  Tensor poisoned = MakeClip((*server)->model(), 6);
  poisoned.flat(7) = std::numeric_limits<float>::quiet_NaN();

  struct Sink {
    std::atomic<int> ok{0};
    std::atomic<int> invalid{0};
    std::atomic<int> done{0};
  } sink;
  auto done = +[](void* ctx, const ServeResponse& response) {
    Sink* s = static_cast<Sink*>(ctx);
    if (response.status.ok()) ++s->ok;
    if (response.status.IsInvalidArgument()) ++s->invalid;
    ++s->done;
  };
  ASSERT_TRUE(
      (*server)->Submit(poisoned, SubmitOptions(), done, &sink).ok());
  ASSERT_TRUE((*server)->Submit(good, SubmitOptions(), done, &sink).ok());
  while (sink.done.load() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(sink.ok.load(), 1);
  EXPECT_EQ(sink.invalid.load(), 1);
  ServeStats stats = (*server)->Stats();
  EXPECT_EQ(stats.invalid_input, 1);
  EXPECT_EQ(stats.completed_ok, 1);
}

TEST_F(ServeServerTest, PoisonInputFaultSiteQuarantines) {
  auto server =
      InferenceServer::Create("", TestConfig(), kFrames, TestOptions());
  ASSERT_TRUE(server.ok());
  Tensor clip = MakeClip((*server)->model(), 8);
  FaultInjection::Get().Arm(FaultSite::kServePoisonInput, /*nth=*/1);
  ServeResponse response = (*server)->Infer(clip, SubmitOptions());
  EXPECT_TRUE(response.status.IsInvalidArgument())
      << response.status.ToString();
  // One-shot: the same clip (caller buffer untouched) now succeeds.
  response = (*server)->Infer(clip, SubmitOptions());
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
}

TEST_F(ServeServerTest, QueuedRequestExpiresWithoutCompute) {
  FakeServeClock clock(1'000 * kMs);
  ServerOptions options = TestOptions();
  options.batcher.batch_delay_ns = 100 * kMs;  // hold the queue
  auto server = InferenceServer::Create("", TestConfig(), kFrames,
                                        options, &clock);
  ASSERT_TRUE(server.ok());
  Tensor clip = MakeClip((*server)->model(), 9);

  struct Sink {
    std::atomic<int> expired{0};
    std::atomic<int> done{0};
  } sink;
  auto done = +[](void* ctx, const ServeResponse& response) {
    Sink* s = static_cast<Sink*>(ctx);
    if (response.status.IsDeadlineExceeded()) ++s->expired;
    ++s->done;
  };
  SubmitOptions submit;
  submit.deadline_ns = 10 * kMs;
  ASSERT_TRUE((*server)->Submit(clip, submit, done, &sink).ok());
  // Fake time jumps straight past the deadline: the worker must expire
  // the request without running the model.
  clock.AdvanceMillis(11);
  while (sink.done.load() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(sink.expired.load(), 1);
  ServeStats stats = (*server)->Stats();
  EXPECT_EQ(stats.expired, 1);
  EXPECT_EQ(stats.batches, 0);  // no compute was spent
}

TEST_F(ServeServerTest, QueueFullFaultShedsAndLadderRecovers) {
  FakeServeClock clock(1'000 * kMs);
  ServerOptions options = TestOptions();
  // Zero coalescing delay: with a frozen fake clock, a batch must still
  // become flushable the moment it is admitted.
  options.batcher.batch_delay_ns = 0;
  auto server = InferenceServer::Create("", TestConfig(), kFrames,
                                        options, &clock);
  ASSERT_TRUE(server.ok());
  Tensor clip = MakeClip((*server)->model(), 11);

  FaultInjection::Get().Arm(FaultSite::kServeQueueFull, /*nth=*/1);
  ServeResponse shed = (*server)->Infer(clip, SubmitOptions());
  EXPECT_TRUE(shed.status.IsOverloaded()) << shed.status.ToString();

  HealthReport health = (*server)->Health();
  EXPECT_EQ(health.state, ServeHealth::kDegraded);
  EXPECT_EQ(health.degrade_level, 1);
  EXPECT_EQ(health.target_batch_size,
            (*server)->options().batcher.max_batch_size / 2);
  ServeStats stats = (*server)->Stats();
  EXPECT_EQ(stats.shed_overloaded, 1);
  EXPECT_EQ(stats.degrade_events, 1);

  // A shed-free quiet period steps the ladder back to full batches.
  clock.AdvanceNanos((*server)->options().batcher.recover_quiet_ns + kMs);
  ServeResponse ok = (*server)->Infer(clip, SubmitOptions());
  EXPECT_TRUE(ok.status.ok()) << ok.status.ToString();
  health = (*server)->Health();
  EXPECT_EQ(health.degrade_level, 0);
  EXPECT_EQ(health.state, ServeHealth::kReady);
  EXPECT_EQ((*server)->Stats().recover_events, 1);
}

TEST_F(ServeServerTest, WatchdogReportsStalledWorker) {
  ServerOptions options = TestOptions();
  options.stall_threshold_ns = 5 * kMs;
  auto server =
      InferenceServer::Create("", TestConfig(), kFrames, options);
  ASSERT_TRUE(server.ok());
  Tensor clip = MakeClip((*server)->model(), 12);

  // Stall the (only) worker for 80 ms mid-batch: with a 5 ms threshold
  // the watchdog must observe kUnhealthy while it sleeps, then recover.
  FaultInjection::Get().Arm(FaultSite::kServeWorkerStall, /*nth=*/1,
                            /*payload=*/80);
  std::atomic<int> done{0};
  ASSERT_TRUE((*server)
                  ->Submit(
                      clip, SubmitOptions(),
                      +[](void* ctx, const ServeResponse&) {
                        ++*static_cast<std::atomic<int>*>(ctx);
                      },
                      &done)
                  .ok());
  bool saw_stall = false;
  for (int i = 0; i < 200 && done.load() == 0; ++i) {
    HealthReport health = (*server)->Health();
    if (health.state == ServeHealth::kUnhealthy &&
        health.stalled_workers == 1) {
      saw_stall = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(saw_stall);
  while (done.load() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ((*server)->Health().stalled_workers, 0);
}

TEST_F(ServeServerTest, ShutdownDrainsEveryAdmittedRequest) {
  ServerOptions options = TestOptions();
  options.batcher.batch_delay_ns = 10 * kMs;
  auto server =
      InferenceServer::Create("", TestConfig(), kFrames, options);
  ASSERT_TRUE(server.ok());
  Tensor clip = MakeClip((*server)->model(), 13);

  std::atomic<int> done{0};
  int admitted = 0;
  for (int i = 0; i < 6; ++i) {
    Status status = (*server)->Submit(
        clip, SubmitOptions(),
        +[](void* ctx, const ServeResponse&) {
          ++*static_cast<std::atomic<int>*>(ctx);
        },
        &done);
    if (status.ok()) ++admitted;
  }
  (*server)->Shutdown();  // must drain, not drop
  EXPECT_EQ(done.load(), admitted);

  // After shutdown: submissions rejected, health reports the state.
  Status late = (*server)->Submit(
      clip, SubmitOptions(), +[](void*, const ServeResponse&) {}, nullptr);
  EXPECT_TRUE(late.IsFailedPrecondition());
  EXPECT_EQ((*server)->Health().state, ServeHealth::kShuttingDown);
  (*server)->Shutdown();  // idempotent
}

TEST_F(ServeServerTest, MultiClientStressCompletesEveryRequest) {
  // The TSan target: concurrent submitters, two workers, occasional
  // client-side poisoning. Every accepted request must complete with a
  // classified status; counters must balance.
  DhgcnConfig config = TestConfig();
  ServerOptions options = TestOptions();
  options.worker_count = 2;
  options.batcher.queue_capacity = 32;
  auto server = InferenceServer::Create("", config, kFrames, options);
  ASSERT_TRUE(server.ok());

  constexpr int kClients = 4;
  constexpr int kPerClient = 25;
  std::atomic<int> ok{0}, invalid{0}, expired{0}, shed{0}, other{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Tensor clip = MakeClip((*server)->model(),
                             static_cast<uint64_t>(100 + c));
      for (int i = 0; i < kPerClient; ++i) {
        Tensor sent = clip.Clone();
        if (i % 7 == 3) {
          sent.flat(0) = std::numeric_limits<float>::quiet_NaN();
        }
        ServeResponse response = (*server)->Infer(sent, SubmitOptions());
        if (response.status.ok()) {
          ++ok;
        } else if (response.status.IsInvalidArgument()) {
          ++invalid;
        } else if (response.status.IsDeadlineExceeded()) {
          ++expired;
        } else if (response.status.IsOverloaded()) {
          ++shed;
        } else {
          ++other;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(ok + invalid + expired + shed + other, kClients * kPerClient);
  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(invalid.load(), kClients * 4);  // i in {3,10,17,24}
  EXPECT_GT(ok.load(), 0);
  ServeStats stats = (*server)->Stats();
  EXPECT_EQ(stats.completed_ok, ok.load());
  EXPECT_EQ(stats.invalid_input, invalid.load());
  // Exactly-once completion: every admitted request landed in one of
  // the completion counters (expired also counts admission-time expiry,
  // hence >=).
  EXPECT_GE(stats.completed_ok + stats.invalid_input + stats.expired,
            stats.admitted);
  (*server)->Shutdown();
}

}  // namespace
}  // namespace dhgcn
