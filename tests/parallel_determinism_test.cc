// Bit-exactness of every ThreadPool-parallelized kernel across thread
// counts — the acceptance test for the static-partitioning determinism
// contract. Each kernel runs with a serial pool (threads=1) and again
// with 2 and 7 threads; outputs must match byte for byte, not just to
// tolerance. A full training run (legacy and workspace-arena paths)
// closes the loop: identical final parameters and losses end to end.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "gtest/gtest.h"

#include "base/rng.h"
#include "base/thread_pool.h"
#include "core/dhgcn_model.h"
#include "data/dataloader.h"
#include "data/dataset.h"
#include "data/synthetic_generator.h"
#include "hypergraph/hypergraph_conv.h"
#include "hypergraph/kmeans.h"
#include "hypergraph/knn.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/loss.h"
#include "plan/plan_builder.h"
#include "plan/plan_runner.h"
#include "quant/calibration.h"
#include "quant/quantize_pass.h"
#include "tensor/gemm_kernel_int8.h"
#include "tensor/linalg.h"
#include "tensor/sparse.h"
#include "tensor/sparse_router.h"
#include "tensor/workspace.h"
#include "train/trainer.h"

namespace dhgcn {
namespace {

// Thread counts the contract is checked against: serial fallback, the
// smallest real pool, and an odd size that cannot divide chunk counts
// evenly.
const int64_t kThreadCounts[] = {1, 2, 7};

void ExpectBitEqual(const Tensor& expected, const Tensor& actual,
                    const char* what, int64_t threads) {
  ASSERT_TRUE(ShapesEqual(expected.shape(), actual.shape()))
      << what << " shape changed at threads=" << threads;
  EXPECT_EQ(std::memcmp(expected.data(), actual.data(),
                        static_cast<size_t>(expected.numel()) *
                            sizeof(float)),
            0)
      << what << " is not bit-identical at threads=" << threads;
}

// Runs `make` (a callable returning a Tensor) under every thread count
// and asserts the results match the serial run bit for bit.
template <typename Fn>
void ExpectDeterministicAcrossThreadCounts(const char* what, Fn&& make) {
  ThreadPool::Get().SetThreads(1);
  Tensor serial = make();
  for (int64_t threads : kThreadCounts) {
    ThreadPool::Get().SetThreads(threads);
    Tensor parallel = make();
    ExpectBitEqual(serial, parallel, what, threads);
  }
  ThreadPool::Get().SetThreads(1);
}

TEST(ParallelDeterminism, MatMul) {
  Rng rng(200);
  Tensor a = Tensor::RandomNormal({64, 32}, rng);
  Tensor b = Tensor::RandomNormal({32, 48}, rng);
  ExpectDeterministicAcrossThreadCounts("MatMul",
                                        [&] { return MatMul(a, b); });
}

TEST(ParallelDeterminism, MatMulIntoWorkspace) {
  Rng rng(201);
  Tensor a = Tensor::RandomNormal({64, 32}, rng);
  Tensor b = Tensor::RandomNormal({32, 48}, rng);
  Workspace ws;
  ExpectDeterministicAcrossThreadCounts("MatMulInto", [&] {
    ws.Reset();
    Tensor out = NewTensor(&ws, {64, 48});
    MatMulInto(a, b, &out, /*accumulate=*/false);
    MatMulInto(a, b, &out, /*accumulate=*/true);  // accumulate path too
    return out.Clone();  // clone: the arena is reset on the next run
  });
}

// Prime, tile-straddling shape large enough for the cache-blocked
// kernel: row tasks never align with the kGemmMR x kGemmNR micro-tiles,
// so any order-dependence in the blocked accumulation would show here.
TEST(ParallelDeterminism, MatMulBlockedOddShape) {
  Rng rng(220);
  Tensor a = Tensor::RandomNormal({61, 67}, rng);
  Tensor b = Tensor::RandomNormal({67, 53}, rng);
  ExpectDeterministicAcrossThreadCounts("MatMul(61x67x53)",
                                        [&] { return MatMul(a, b); });
}

TEST(ParallelDeterminism, BatchedMatMulSharedBBlocked) {
  Rng rng(221);
  Tensor a = Tensor::RandomNormal({3, 48, 32}, rng);
  Tensor b = Tensor::RandomNormal({32, 40}, rng);
  ExpectDeterministicAcrossThreadCounts(
      "BatchedMatMul(blocked 2-D b)", [&] { return BatchedMatMul(a, b); });
}

TEST(ParallelDeterminism, BatchedMatMulPerBatch) {
  Rng rng(202);
  Tensor a = Tensor::RandomNormal({4, 40, 24}, rng);
  Tensor b = Tensor::RandomNormal({4, 24, 16}, rng);
  ExpectDeterministicAcrossThreadCounts(
      "BatchedMatMul(3-D b)", [&] { return BatchedMatMul(a, b); });
}

TEST(ParallelDeterminism, BatchedMatMulSharedB) {
  Rng rng(203);
  Tensor a = Tensor::RandomNormal({4, 40, 24}, rng);
  Tensor b = Tensor::RandomNormal({24, 16}, rng);
  ExpectDeterministicAcrossThreadCounts(
      "BatchedMatMul(2-D b)", [&] { return BatchedMatMul(a, b); });
}

TEST(ParallelDeterminism, MatMulTransposedA) {
  Rng rng(204);
  Tensor a = Tensor::RandomNormal({30, 40}, rng);
  Tensor b = Tensor::RandomNormal({30, 50}, rng);
  ExpectDeterministicAcrossThreadCounts(
      "MatMulTransposedA", [&] { return MatMulTransposedA(a, b); });
}

TEST(ParallelDeterminism, MatMulTransposedB) {
  Rng rng(205);
  Tensor a = Tensor::RandomNormal({40, 30}, rng);
  Tensor b = Tensor::RandomNormal({50, 30}, rng);
  ExpectDeterministicAcrossThreadCounts(
      "MatMulTransposedB", [&] { return MatMulTransposedB(a, b); });
}

// Forward + backward of a freshly seeded Conv2d; returns grad_input and
// checks the accumulated weight/bias gradients inline.
Tensor RunConvOnce(const Conv2dOptions& options, int64_t in_channels,
                   int64_t out_channels, const Shape& x_shape,
                   Tensor* weight_grad, Tensor* bias_grad) {
  Rng rng(206);
  Conv2d layer(in_channels, out_channels, options, rng);
  Tensor x = Tensor::RandomNormal(x_shape, rng);
  Tensor out = layer.Forward(x);
  Tensor g = Tensor::RandomNormal(out.shape(), rng);
  layer.ZeroGrad();
  Tensor grad_input = layer.Backward(g);
  *weight_grad = layer.Params()[0].grad->Clone();
  *bias_grad = layer.Params()[1].grad->Clone();
  return grad_input;
}

void CheckConvDeterminism(const char* what, const Conv2dOptions& options,
                          int64_t in_channels, int64_t out_channels,
                          const Shape& x_shape) {
  ThreadPool::Get().SetThreads(1);
  Tensor serial_wg, serial_bg;
  Tensor serial_gi = RunConvOnce(options, in_channels, out_channels,
                                 x_shape, &serial_wg, &serial_bg);
  for (int64_t threads : kThreadCounts) {
    ThreadPool::Get().SetThreads(threads);
    Tensor wg, bg;
    Tensor gi = RunConvOnce(options, in_channels, out_channels, x_shape,
                            &wg, &bg);
    ExpectBitEqual(serial_gi, gi, what, threads);
    ExpectBitEqual(serial_wg, wg, what, threads);
    ExpectBitEqual(serial_bg, bg, what, threads);
  }
  ThreadPool::Get().SetThreads(1);
}

TEST(ParallelDeterminism, Conv2dPointwise) {
  CheckConvDeterminism("Conv2d 1x1", Conv2dOptions{}, 8, 16,
                       {4, 8, 12, 10});
}

TEST(ParallelDeterminism, Conv2dGeneral) {
  Conv2dOptions options;
  options.kernel_h = 3;
  options.kernel_w = 3;
  options.pad_h = 1;
  options.pad_w = 1;
  CheckConvDeterminism("Conv2d 3x3", options, 4, 6, {2, 4, 7, 6});
}

// Strided + dilated temporal conv, large enough that the im2col GEMM
// takes the cache-blocked kernel; exercises the Col2Im scatter and the
// per-batch packed-buffer reuse under every thread count.
TEST(ParallelDeterminism, Conv2dStridedDilatedIm2col) {
  Conv2dOptions options;
  options.kernel_h = 9;
  options.pad_h = 8;
  options.dilation_h = 2;
  options.stride_h = 2;
  CheckConvDeterminism("Conv2d 9x1 s2 d2", options, 8, 12,
                       {3, 8, 24, 25});
}

Tensor RunBatchNormOnce(bool training, Tensor* grad_input,
                        Tensor* gamma_grad, Tensor* running_mean) {
  Rng rng(207);
  BatchNorm2d layer(16);
  layer.SetTraining(training);
  layer.gamma() = Tensor::RandomUniform({16}, rng, 0.5f, 1.5f);
  layer.beta() = Tensor::RandomNormal({16}, rng);
  // Large spatial extent so the channel grain splits 16 channels into
  // several chunks (grain shrinks as per-channel work grows).
  Tensor x = Tensor::RandomNormal({8, 16, 32, 16}, rng);
  Tensor out = layer.Forward(x);
  if (training) {
    Tensor g = Tensor::RandomNormal(out.shape(), rng);
    layer.ZeroGrad();
    *grad_input = layer.Backward(g);
    *gamma_grad = layer.Params()[0].grad->Clone();
  }
  *running_mean = layer.Params()[2].value->Clone();
  return out;
}

TEST(ParallelDeterminism, BatchNormTraining) {
  ThreadPool::Get().SetThreads(1);
  Tensor serial_gi, serial_gg, serial_rm;
  Tensor serial =
      RunBatchNormOnce(true, &serial_gi, &serial_gg, &serial_rm);
  for (int64_t threads : kThreadCounts) {
    ThreadPool::Get().SetThreads(threads);
    Tensor gi, gg, rm;
    Tensor out = RunBatchNormOnce(true, &gi, &gg, &rm);
    ExpectBitEqual(serial, out, "BatchNorm2d forward", threads);
    ExpectBitEqual(serial_gi, gi, "BatchNorm2d grad_input", threads);
    ExpectBitEqual(serial_gg, gg, "BatchNorm2d gamma_grad", threads);
    ExpectBitEqual(serial_rm, rm, "BatchNorm2d running_mean", threads);
  }
  ThreadPool::Get().SetThreads(1);
}

TEST(ParallelDeterminism, BatchNormEval) {
  ThreadPool::Get().SetThreads(1);
  Tensor unused_gi, unused_gg, rm0;
  Tensor serial = RunBatchNormOnce(false, &unused_gi, &unused_gg, &rm0);
  for (int64_t threads : kThreadCounts) {
    ThreadPool::Get().SetThreads(threads);
    Tensor rm;
    Tensor out = RunBatchNormOnce(false, &unused_gi, &unused_gg, &rm);
    ExpectBitEqual(serial, out, "BatchNorm2d eval forward", threads);
  }
  ThreadPool::Get().SetThreads(1);
}

TEST(ParallelDeterminism, SoftmaxCrossEntropy) {
  Rng rng(208);
  // Batch of 37 rows: five reduction chunks at the loss grain of 8.
  Tensor logits = Tensor::RandomNormal({37, 10}, rng);
  std::vector<int64_t> labels;
  for (int64_t i = 0; i < 37; ++i) labels.push_back(i % 10);

  for (float smoothing : {0.0f, 0.1f}) {
    SoftmaxCrossEntropy loss(smoothing);
    ThreadPool::Get().SetThreads(1);
    float serial_value = loss.Forward(logits, labels);
    Tensor serial_grad = loss.Backward();
    for (int64_t threads : kThreadCounts) {
      ThreadPool::Get().SetThreads(threads);
      float value = loss.Forward(logits, labels);
      Tensor grad = loss.Backward();
      EXPECT_EQ(value, serial_value)
          << "loss value at threads=" << threads
          << " smoothing=" << smoothing;
      ExpectBitEqual(serial_grad, grad, "loss gradient", threads);
    }
  }
  ThreadPool::Get().SetThreads(1);
}

TEST(ParallelDeterminism, PairwiseDistances) {
  Rng rng(209);
  Tensor features = Tensor::RandomNormal({100, 16}, rng);
  ExpectDeterministicAcrossThreadCounts(
      "PairwiseDistances", [&] { return PairwiseDistances(features); });
}

TEST(ParallelDeterminism, PairwiseDistancesWorkspace) {
  Rng rng(210);
  Tensor features = Tensor::RandomNormal({100, 16}, rng);
  Workspace ws;
  ExpectDeterministicAcrossThreadCounts("PairwiseDistances(ws)", [&] {
    ws.Reset();
    return PairwiseDistances(features, &ws).Clone();
  });
}

TEST(ParallelDeterminism, KMeansClusters) {
  Rng feature_rng(211);
  Tensor features = Tensor::RandomNormal({80, 8}, feature_rng);

  auto run = [&] {
    Rng rng(212);  // fresh, equally seeded Rng per run
    return KMeansClusters(features, /*k=*/6, rng, /*max_iters=*/20);
  };
  ThreadPool::Get().SetThreads(1);
  KMeansResult serial = run();
  for (int64_t threads : kThreadCounts) {
    ThreadPool::Get().SetThreads(threads);
    KMeansResult parallel = run();
    EXPECT_EQ(parallel.medoids, serial.medoids) << "threads=" << threads;
    EXPECT_EQ(parallel.clusters, serial.clusters) << "threads=" << threads;
    EXPECT_EQ(parallel.iterations, serial.iterations)
        << "threads=" << threads;
  }
  ThreadPool::Get().SetThreads(1);
}

// --- End-to-end: a short training run must be bit-reproducible for any
// thread count, on both the legacy and the workspace-arena path. -------

struct TrainingFingerprint {
  double final_loss = 0.0;
  std::vector<Tensor> params;
};

TrainingFingerprint RunTraining(const SkeletonDataset& dataset,
                                const DatasetSplit& split,
                                bool use_workspace) {
  DataLoader loader(&dataset, split.train, 4, InputStream::kJoint,
                    /*shuffle=*/true, Rng(5));
  DhgcnConfig config =
      DhgcnConfig::Tiny(SkeletonLayoutType::kNtu25, /*num_classes=*/2);
  DhgcnModel model(config);
  TrainOptions options;
  options.epochs = 3;
  options.initial_lr = 0.01f;
  options.use_workspace = use_workspace;
  Trainer trainer(&model, options);
  TrainingFingerprint fp;
  fp.final_loss = trainer.Train(loader).ValueOrDie().back().mean_loss;
  for (ParamRef& p : model.Params()) fp.params.push_back(p.value->Clone());
  return fp;
}

TEST(ParallelDeterminism, ThreeEpochTrainingRun) {
  SyntheticDataConfig data_config = NtuLikeConfig(2, 5, 8, 17);
  SkeletonDataset dataset =
      SkeletonDataset::Generate(data_config).MoveValue();
  DatasetSplit split = dataset.RandomSplit(0.3f, 1);

  for (bool use_workspace : {true, false}) {
    ThreadPool::Get().SetThreads(1);
    TrainingFingerprint serial = RunTraining(dataset, split, use_workspace);
    for (int64_t threads : kThreadCounts) {
      ThreadPool::Get().SetThreads(threads);
      TrainingFingerprint parallel =
          RunTraining(dataset, split, use_workspace);
      EXPECT_EQ(parallel.final_loss, serial.final_loss)
          << "threads=" << threads << " workspace=" << use_workspace;
      ASSERT_EQ(parallel.params.size(), serial.params.size());
      for (size_t p = 0; p < serial.params.size(); ++p) {
        ExpectBitEqual(serial.params[p], parallel.params[p],
                       "trained parameter", threads);
      }
    }
  }
  ThreadPool::Get().SetThreads(1);
}

// --- Compiled-plan replay: the plan path runs the exact same kernels
// as the layer path, so unfused replay must be bit-identical to the
// serial layer forward at every thread count (and so must the fused
// replay to its own serial run — fusion changes the math w.r.t. the
// layer path, but not w.r.t. thread count). ---------------------------

TEST(ParallelDeterminism, PlanReplayUnfusedMatchesLayerPath) {
  DhgcnConfig config =
      DhgcnConfig::Tiny(SkeletonLayoutType::kNtu25, /*num_classes=*/3);
  DhgcnModel model(config);
  model.SetTraining(false);
  Rng rng(230);
  Tensor x = Tensor::RandomNormal({2, 3, 8, 25}, rng);

  ThreadPool::Get().SetThreads(1);
  Tensor serial = model.Forward(x);
  PlanRunner runner(
      BuildInferencePlan(model, x.shape(), PlanMode::kUnfused)
          .ValueOrDie());
  for (int64_t threads : kThreadCounts) {
    ThreadPool::Get().SetThreads(threads);
    ExpectBitEqual(serial, runner.Run(x), "unfused plan replay", threads);
    // A freshly compiled runner must agree too: capture is shape-only,
    // so the thread count at build time cannot matter.
    PlanRunner fresh(
        BuildInferencePlan(model, x.shape(), PlanMode::kUnfused)
            .ValueOrDie());
    ExpectBitEqual(serial, fresh.Run(x), "fresh unfused plan replay",
                   threads);
  }
  ThreadPool::Get().SetThreads(1);
}

// --- Sparse execution path: the CSR kernels partition CSR/output rows
// statically and accumulate in fixed ascending-k order, so the routed
// path must be as thread-invariant as the dense one. -------------------

// Random normal tensor with ~`density` fraction of nonzeros.
Tensor RandomAtDensity(const Shape& shape, double density, Rng& rng) {
  Tensor t = Tensor::RandomNormal(shape, rng);
  for (int64_t i = 0; i < t.numel(); ++i) {
    if (rng.Uniform() >= static_cast<float>(density)) t.flat(i) = 0.0f;
  }
  return t;
}

// Save/restore the process-wide router around a forced-mode run.
class ScopedSparseMode {
 public:
  explicit ScopedSparseMode(SparseMode mode)
      : saved_(SparseRouter::Get().mode()) {
    SparseRouter::Get().set_mode(mode);
  }
  ~ScopedSparseMode() { SparseRouter::Get().set_mode(saved_); }

 private:
  SparseMode saved_;
};

TEST(ParallelDeterminism, SpMMIntoKernels) {
  Rng rng(240);
  Tensor a = RandomAtDensity({61, 67}, 0.1, rng);
  Tensor b = Tensor::RandomNormal({67, 37}, rng);
  CsrMatrix a_csr = CsrMatrix::FromDense(a);
  ExpectDeterministicAcrossThreadCounts("SpMMInto", [&] {
    Tensor c({61, 37});
    SpMMInto(a_csr, b, &c);
    SpMMAccumulateInto(a_csr, b, &c);
    return c;
  });

  Tensor d = Tensor::RandomNormal({53, 61}, rng);
  ExpectDeterministicAcrossThreadCounts("DenseSpMMInto", [&] {
    Tensor c({53, 67});
    DenseSpMMInto(d, a_csr, &c);
    return c;
  });

  Tensor e = Tensor::RandomNormal({29, 67}, rng);
  ExpectDeterministicAcrossThreadCounts("SpMMTransposedBInto", [&] {
    Tensor c({29, 61});
    SpMMTransposedBInto(e, a_csr, &c);
    return c;
  });
}

TEST(ParallelDeterminism, SparseRoutedVertexMix) {
  ScopedSparseMode on(SparseMode::kOn);
  Rng rng(241);
  Tensor op = RandomAtDensity({25, 25}, 0.15, rng);
  Tensor x = Tensor::RandomNormal({2, 4, 6, 25}, rng);
  Tensor gy = Tensor::RandomNormal({2, 4, 6, 25}, rng);
  VertexMix mix(op.Clone());
  ExpectDeterministicAcrossThreadCounts("sparse VertexMix fwd+bwd", [&] {
    Tensor y = mix.Forward(x);
    Tensor g = mix.Backward(gy);
    // Pack both results into one tensor so a single memcmp covers them.
    Tensor packed({y.numel() + g.numel()});
    std::memcpy(packed.data(), y.data(), sizeof(float) * y.numel());
    std::memcpy(packed.data() + y.numel(), g.data(),
                sizeof(float) * g.numel());
    return packed;
  });
}

TEST(ParallelDeterminism, SparseRoutedDynamicVertexMix) {
  ScopedSparseMode on(SparseMode::kOn);
  Rng rng(242);
  Tensor ops = RandomAtDensity({2, 5, 17, 17}, 0.12, rng);
  Tensor x = Tensor::RandomNormal({2, 3, 5, 17}, rng);
  Tensor gy = Tensor::RandomNormal({2, 3, 5, 17}, rng);
  DynamicVertexMix mix;
  mix.SetOperators(ops.Clone());
  ExpectDeterministicAcrossThreadCounts(
      "sparse DynamicVertexMix fwd+bwd", [&] {
        Tensor y = mix.Forward(x);
        Tensor g = mix.Backward(gy);
        Tensor packed({y.numel() + g.numel()});
        std::memcpy(packed.data(), y.data(), sizeof(float) * y.numel());
        std::memcpy(packed.data() + y.numel(), g.data(),
                    sizeof(float) * g.numel());
        return packed;
      });
}

// Pruned fine-tuned training: the magnitude selection is a strict total
// order over (|w|, flat index) and the routed kernels are
// thread-invariant, so a pruning run must fingerprint identically at
// every thread count — with the router forced on, exercising the sparse
// kernels on the genuinely sparsified weights.
TEST(ParallelDeterminism, ThreeEpochPrunedTrainingRun) {
  ScopedSparseMode on(SparseMode::kOn);
  SyntheticDataConfig data_config = NtuLikeConfig(2, 5, 8, 19);
  SkeletonDataset dataset =
      SkeletonDataset::Generate(data_config).MoveValue();
  DatasetSplit split = dataset.RandomSplit(0.3f, 1);

  auto run = [&]() -> TrainingFingerprint {
    DataLoader loader(&dataset, split.train, 4, InputStream::kJoint,
                      /*shuffle=*/true, Rng(5));
    DhgcnConfig config =
        DhgcnConfig::Tiny(SkeletonLayoutType::kNtu25, /*num_classes=*/2);
    DhgcnModel model(config);
    TrainOptions options;
    options.epochs = 3;
    options.initial_lr = 0.01f;
    options.prune.enabled = true;
    options.prune.target_sparsity = 0.5;
    options.prune.start_epoch = 1;
    options.prune.end_epoch = 2;
    Trainer trainer(&model, options);
    TrainingFingerprint fp;
    fp.final_loss = trainer.Train(loader).ValueOrDie().back().mean_loss;
    for (ParamRef& p : model.Params()) fp.params.push_back(p.value->Clone());
    return fp;
  };

  ThreadPool::Get().SetThreads(1);
  TrainingFingerprint serial = run();
  for (int64_t threads : kThreadCounts) {
    ThreadPool::Get().SetThreads(threads);
    TrainingFingerprint parallel = run();
    EXPECT_EQ(parallel.final_loss, serial.final_loss)
        << "threads=" << threads;
    ASSERT_EQ(parallel.params.size(), serial.params.size());
    for (size_t p = 0; p < serial.params.size(); ++p) {
      ExpectBitEqual(serial.params[p], parallel.params[p],
                     "pruned trained parameter", threads);
    }
  }
  ThreadPool::Get().SetThreads(1);
}

// --- Int8 quantized path: integer accumulation is exact, so the int8
// kernel and the full int8 plan replay carry a strictly stronger
// contract than fp32 — bit-identical across thread counts by
// construction, verified by memcmp here. -------------------------------

TEST(ParallelDeterminism, Int8GemmKernelThreadInvariant) {
  // Parallelize the packed kernel over kInt8MR row blocks exactly as
  // the plan replay wrapper does, and memcmp the int32 accumulators.
  const int64_t m = 61, k = 67, n = 53;
  const int64_t k_pad = detail::Int8KPad(k);
  Rng rng(232);
  std::vector<uint8_t> a(m * k_pad, 128);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      a[i * k_pad + kk] = static_cast<uint8_t>(1 + rng.Uniform() * 254.0f);
    }
  }
  std::vector<int8_t> b(k * n);
  for (auto& v : b) {
    v = static_cast<int8_t>(
        std::lround(rng.Uniform() * 2.0f * detail::kInt8WeightMax) -
        detail::kInt8WeightMax);
  }
  std::vector<int8_t> bp(detail::Int8PackedBCount(k, n));
  detail::Int8PackB(b.data(), k, n, bp.data());

  auto run = [&](std::vector<int32_t>* c) {
    c->assign(m * n, 0);
    const int64_t blocks = (m + detail::kInt8MR - 1) / detail::kInt8MR;
    ThreadPool::Get().ParallelFor(
        0, blocks, /*grain=*/1, [&](int64_t begin, int64_t end) {
          int64_t row0 = begin * detail::kInt8MR;
          int64_t row1 = std::min(m, end * detail::kInt8MR);
          detail::Int8GemmPackedB(a.data() + row0 * k_pad, k_pad,
                                  bp.data(), c->data() + row0 * n,
                                  row1 - row0, k_pad, n);
        });
  };

  ThreadPool::Get().SetThreads(1);
  std::vector<int32_t> serial;
  run(&serial);
  for (int64_t threads : kThreadCounts) {
    ThreadPool::Get().SetThreads(threads);
    std::vector<int32_t> parallel;
    run(&parallel);
    EXPECT_EQ(std::memcmp(serial.data(), parallel.data(),
                          serial.size() * sizeof(int32_t)),
              0)
        << "int8 GEMM is not bit-identical at threads=" << threads;
  }
  ThreadPool::Get().SetThreads(1);
}

TEST(ParallelDeterminism, PlanReplayInt8ThreadInvariant) {
  DhgcnConfig config =
      DhgcnConfig::Tiny(SkeletonLayoutType::kNtu25, /*num_classes=*/3);
  DhgcnModel model(config);
  model.SetTraining(false);
  Rng rng(233);
  Tensor x = Tensor::RandomNormal({2, 3, 8, 25}, rng);

  ThreadPool::Get().SetThreads(1);
  QuantCalibration calib =
      CalibrateOnInputs(model, {x}).ValueOrDie();
  PlanRunner runner(
      BuildInt8InferencePlan(model, x.shape(), calib).ValueOrDie());
  Tensor serial = runner.Run(x).Clone();
  for (int64_t threads : kThreadCounts) {
    ThreadPool::Get().SetThreads(threads);
    ExpectBitEqual(serial, runner.Run(x), "int8 plan replay", threads);
    // Calibration itself must be thread-invariant too: a fresh
    // calibration + compile under this thread count replays the same
    // bytes.
    QuantCalibration recalib = CalibrateOnInputs(model, {x}).ValueOrDie();
    PlanRunner fresh(
        BuildInt8InferencePlan(model, x.shape(), recalib).ValueOrDie());
    ExpectBitEqual(serial, fresh.Run(x), "fresh int8 plan replay",
                   threads);
  }
  ThreadPool::Get().SetThreads(1);
}

TEST(ParallelDeterminism, PlanReplayFusedThreadInvariant) {
  DhgcnConfig config =
      DhgcnConfig::Tiny(SkeletonLayoutType::kNtu25, /*num_classes=*/3);
  DhgcnModel model(config);
  model.SetTraining(false);
  Rng rng(231);
  Tensor x = Tensor::RandomNormal({2, 3, 8, 25}, rng);

  ThreadPool::Get().SetThreads(1);
  PlanRunner runner(
      BuildInferencePlan(model, x.shape(), PlanMode::kFused)
          .ValueOrDie());
  Tensor serial = runner.Run(x).Clone();
  for (int64_t threads : kThreadCounts) {
    ThreadPool::Get().SetThreads(threads);
    ExpectBitEqual(serial, runner.Run(x), "fused plan replay", threads);
  }
  ThreadPool::Get().SetThreads(1);
}

}  // namespace
}  // namespace dhgcn
