#include "tensor/workspace.h"

#include <cstdint>

#include "base/alloc_stats.h"
#include "gtest/gtest.h"
#include "tensor/tensor.h"

namespace dhgcn {
namespace {

bool IsAligned(const float* p) {
  return reinterpret_cast<uintptr_t>(p) % Workspace::kAlignment == 0;
}

TEST(WorkspaceTest, AcquireHandsOutAlignedBuffers) {
  Workspace ws;
  // Odd element counts force unaligned raw sizes; every buffer must
  // still start on a kAlignment boundary.
  Tensor a = ws.Acquire({3});
  Tensor b = ws.Acquire({5, 7});
  Tensor c = ws.Acquire({1});
  EXPECT_TRUE(IsAligned(a.data()));
  EXPECT_TRUE(IsAligned(b.data()));
  EXPECT_TRUE(IsAligned(c.data()));
  EXPECT_FALSE(a.owns_storage());
  EXPECT_FALSE(b.owns_storage());
}

TEST(WorkspaceTest, BytesInUseTracksAlignedSlices) {
  Workspace ws(1 << 16);
  EXPECT_EQ(ws.bytes_in_use(), 0u);
  // lint: allow-discard — advancing the bump pointer is the point.
  (void)ws.Acquire({3});  // 12 raw bytes -> one 64-byte slice
  EXPECT_EQ(ws.bytes_in_use(), Workspace::kAlignment);
  (void)ws.Acquire({17});  // 68 raw bytes -> two 64-byte slices  // lint: allow-discard
  EXPECT_EQ(ws.bytes_in_use(), 3 * Workspace::kAlignment);
  ws.Reset();
  EXPECT_EQ(ws.bytes_in_use(), 0u);
}

TEST(WorkspaceTest, GrowsByAppendingBlocksAndResetCoalesces) {
  Workspace ws;
  EXPECT_EQ(ws.block_count(), 0u);  // default ctor allocates lazily
  (void)ws.Acquire({16});  // creates the first block  // lint: allow-discard
  EXPECT_EQ(ws.block_count(), 1u);
  size_t initial_capacity = ws.capacity_bytes();
  // Each request is larger than the 64 KiB minimum block, forcing growth.
  constexpr int64_t kBig = 20000;  // ~80 KB per tensor
  // lint: allow-discard — only arena growth is under test.
  for (int i = 0; i < 4; ++i) (void)ws.Acquire({kBig});
  EXPECT_GT(ws.block_count(), 1u);
  size_t grown_capacity = ws.capacity_bytes();
  EXPECT_GT(grown_capacity, initial_capacity);

  ws.Reset();
  EXPECT_EQ(ws.block_count(), 1u);
  EXPECT_GE(ws.capacity_bytes(), grown_capacity);

  // The coalesced block now fits the same working set without growing.
  size_t capacity_after_reset = ws.capacity_bytes();
  // lint: allow-discard — only arena growth is under test.
  for (int i = 0; i < 4; ++i) (void)ws.Acquire({kBig});
  EXPECT_EQ(ws.block_count(), 1u);
  EXPECT_EQ(ws.capacity_bytes(), capacity_after_reset);
}

TEST(WorkspaceTest, SteadyStateHasNoOwningAllocations) {
  Workspace ws;
  // lint: allow-discard — only allocation counters are under test.
  for (int i = 0; i < 4; ++i) (void)ws.Acquire({64, 64});
  ws.Reset();
  AllocStatsGuard guard;
  for (int step = 0; step < 3; ++step) {
    for (int i = 0; i < 4; ++i) {
      Tensor t = ws.Acquire({64, 64});
      t.flat(0) = 1.0f;  // touch the buffer
    }
    ws.Reset();
  }
  EXPECT_EQ(guard.allocations(), 0u);
  EXPECT_EQ(guard.bytes(), 0u);
}

TEST(WorkspaceTest, AcquireZeroedZeroesAndAcquireReusesMemory) {
  Workspace ws;
  Tensor dirty = ws.Acquire({32});
  for (int64_t i = 0; i < dirty.numel(); ++i) dirty.flat(i) = 123.0f;
  ws.Reset();
  Tensor zeroed = ws.AcquireZeroed({32});
  for (int64_t i = 0; i < zeroed.numel(); ++i) {
    ASSERT_EQ(zeroed.flat(i), 0.0f) << "index " << i;
  }
}

TEST(WorkspaceTest, ResetAdvancesEpoch) {
  Workspace ws;
  uint64_t e0 = ws.epoch();
  ws.Reset();
  EXPECT_EQ(ws.epoch(), e0 + 1);
  ws.Reset();
  EXPECT_EQ(ws.epoch(), e0 + 2);
}

TEST(WorkspaceTest, BorrowSurvivesUntilReset) {
  Workspace ws;
  Tensor t = ws.Acquire({4});
  for (int64_t i = 0; i < 4; ++i) t.flat(i) = static_cast<float>(i);
  // Copies share the same borrowed storage and stay valid pre-Reset.
  Tensor alias = t;
  EXPECT_EQ(alias.flat(3), 3.0f);
}

TEST(WorkspaceDeathTest, BorrowAfterResetAborts) {
  Workspace ws;
  Tensor t = ws.Acquire({4});
  t.flat(0) = 1.0f;
  ws.Reset();
  EXPECT_DEATH({ float v = t.flat(0); (void)v; }, "DHGCN_CHECK");
}

TEST(WorkspaceDeathTest, BorrowAfterArenaDestructionAborts) {
  Tensor t;
  {
    Workspace ws;
    t = ws.Acquire({4});
    t.flat(0) = 1.0f;
  }
  EXPECT_DEATH({ float v = t.flat(0); (void)v; }, "DHGCN_CHECK");
}

TEST(WorkspaceTest, NewTensorFallsBackToOwningWithoutArena) {
  AllocStatsGuard guard;
  Tensor owned = NewTensor(nullptr, {8});
  EXPECT_TRUE(owned.owns_storage());
  EXPECT_EQ(guard.allocations(), 1u);
  // Owning fallback is zero-initialized (Tensor(Shape) semantics).
  for (int64_t i = 0; i < owned.numel(); ++i) EXPECT_EQ(owned.flat(i), 0.0f);

  Tensor zeroed = NewZeroedTensor(nullptr, {8});
  EXPECT_TRUE(zeroed.owns_storage());
  for (int64_t i = 0; i < zeroed.numel(); ++i) EXPECT_EQ(zeroed.flat(i), 0.0f);
}

TEST(WorkspaceTest, NewTensorBorrowsFromArena) {
  Workspace ws;
  // lint: allow-discard — warm the arena so the next call cannot grow it.
  (void)ws.Acquire({1});
  ws.Reset();
  AllocStatsGuard guard;
  Tensor borrowed = NewTensor(&ws, {8});
  EXPECT_FALSE(borrowed.owns_storage());
  EXPECT_EQ(guard.allocations(), 0u);
  Tensor z = NewZeroedTensor(&ws, {8});
  EXPECT_FALSE(z.owns_storage());
  for (int64_t i = 0; i < z.numel(); ++i) EXPECT_EQ(z.flat(i), 0.0f);
}

TEST(WorkspaceTest, BorrowedReshapeAliasesSameStorage) {
  Workspace ws;
  Tensor t = ws.Acquire({2, 6});
  for (int64_t i = 0; i < t.numel(); ++i) t.flat(i) = static_cast<float>(i);
  Tensor r = t.Reshape({3, 4});
  EXPECT_FALSE(r.owns_storage());
  EXPECT_EQ(r.data(), t.data());
  r.flat(0) = 42.0f;
  EXPECT_EQ(t.flat(0), 42.0f);
}

TEST(WorkspaceTest, CloneOfBorrowedTensorIsOwningAndIndependent) {
  Workspace ws;
  Tensor t = ws.Acquire({4});
  for (int64_t i = 0; i < 4; ++i) t.flat(i) = static_cast<float>(i + 1);
  Tensor c = t.Clone();
  EXPECT_TRUE(c.owns_storage());
  ws.Reset();
  // The clone survives the reset that invalidated the borrow.
  EXPECT_EQ(c.flat(3), 4.0f);
}

}  // namespace
}  // namespace dhgcn
