#include <cmath>

#include "gtest/gtest.h"

#include "base/rng.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/tensor_ops.h"

namespace dhgcn {
namespace {

// --- SoftmaxCrossEntropy ----------------------------------------------------

TEST(SoftmaxCrossEntropyTest, UniformLogitsGiveLogK) {
  SoftmaxCrossEntropy loss;
  Tensor logits({4, 10});  // all zeros -> uniform distribution
  std::vector<int64_t> labels = {0, 3, 7, 9};
  float value = loss.Forward(logits, labels);
  EXPECT_NEAR(value, std::log(10.0f), 1e-5f);
}

TEST(SoftmaxCrossEntropyTest, ConfidentCorrectIsNearZero) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 3});
  logits.at(0, 1) = 50.0f;
  float value = loss.Forward(logits, {1});
  EXPECT_NEAR(value, 0.0f, 1e-4f);
}

TEST(SoftmaxCrossEntropyTest, ConfidentWrongIsLarge) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 3});
  logits.at(0, 1) = 20.0f;
  float value = loss.Forward(logits, {0});
  EXPECT_GT(value, 10.0f);
}

TEST(SoftmaxCrossEntropyTest, GradientIsProbsMinusOnehotOverN) {
  SoftmaxCrossEntropy loss;
  Rng rng(30);
  Tensor logits = Tensor::RandomNormal({2, 4}, rng);
  loss.Forward(logits, {1, 3});
  Tensor grad = loss.Backward();
  Tensor probs = Softmax(logits, 1);
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t k = 0; k < 4; ++k) {
      float expected = probs.at(i, k);
      if ((i == 0 && k == 1) || (i == 1 && k == 3)) expected -= 1.0f;
      EXPECT_NEAR(grad.at(i, k), expected / 2.0f, 1e-5f);
    }
  }
}

TEST(SoftmaxCrossEntropyTest, GradientMatchesFiniteDifference) {
  SoftmaxCrossEntropy loss;
  Rng rng(31);
  Tensor logits = Tensor::RandomNormal({3, 5}, rng);
  std::vector<int64_t> labels = {0, 2, 4};
  loss.Forward(logits, labels);
  Tensor analytic = loss.Backward();
  const float eps = 1e-3f;
  for (int64_t idx = 0; idx < logits.numel(); idx += 3) {
    float original = logits.flat(idx);
    logits.flat(idx) = original + eps;
    float up = loss.Forward(logits, labels);
    logits.flat(idx) = original - eps;
    float down = loss.Forward(logits, labels);
    logits.flat(idx) = original;
    float numeric = (up - down) / (2.0f * eps);
    EXPECT_NEAR(analytic.flat(idx), numeric, 5e-3f);
  }
}

TEST(SoftmaxCrossEntropyTest, GradientRowsSumToZero) {
  SoftmaxCrossEntropy loss;
  Rng rng(32);
  Tensor logits = Tensor::RandomNormal({4, 6}, rng);
  loss.Forward(logits, {0, 1, 2, 3});
  Tensor grad = loss.Backward();
  for (int64_t i = 0; i < 4; ++i) {
    double sum = 0.0;
    for (int64_t k = 0; k < 6; ++k) sum += grad.at(i, k);
    EXPECT_NEAR(sum, 0.0, 1e-5);
  }
}

TEST(SoftmaxCrossEntropyDeathTest, LabelOutOfRange) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 3});
  // Forward is the aborting wrapper; TryForward returns the Status.
  EXPECT_DEATH(loss.Forward(logits, {3}), "label 3");
}

TEST(SoftmaxCrossEntropyTest, TryForwardRejectsCorruptLabels) {
  SoftmaxCrossEntropy loss;
  Tensor logits({2, 3});
  Result<float> bad = loss.TryForward(logits, {1, 7});
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  EXPECT_NE(bad.status().message().find("label 7"), std::string::npos);
  EXPECT_NE(bad.status().message().find("batch index 1"),
            std::string::npos);
  Result<float> negative = loss.TryForward(logits, {-1, 0});
  ASSERT_FALSE(negative.ok());
  // Batch-size mismatch is also caught before any indexing.
  EXPECT_FALSE(loss.TryForward(logits, {0}).ok());
}

// --- SgdOptimizer -------------------------------------------------------------

TEST(SgdTest, PlainGradientStep) {
  Tensor w = Tensor::FromList({1.0f, 2.0f});
  Tensor g = Tensor::FromList({0.5f, -1.0f});
  SgdOptimizer::Options options;
  options.lr = 0.1f;
  options.momentum = 0.0f;
  SgdOptimizer sgd({{"w", &w, &g}}, options);
  sgd.Step();
  EXPECT_FLOAT_EQ(w.flat(0), 1.0f - 0.1f * 0.5f);
  EXPECT_FLOAT_EQ(w.flat(1), 2.0f + 0.1f * 1.0f);
}

TEST(SgdTest, MomentumAccumulates) {
  Tensor w = Tensor::FromList({0.0f});
  Tensor g = Tensor::FromList({1.0f});
  SgdOptimizer::Options options;
  options.lr = 1.0f;
  options.momentum = 0.5f;
  SgdOptimizer sgd({{"w", &w, &g}}, options);
  sgd.Step();  // v = 1, w = -1
  EXPECT_FLOAT_EQ(w.flat(0), -1.0f);
  sgd.Step();  // v = 1.5, w = -2.5
  EXPECT_FLOAT_EQ(w.flat(0), -2.5f);
}

TEST(SgdTest, WeightDecayPullsTowardZero) {
  Tensor w = Tensor::FromList({10.0f});
  Tensor g = Tensor::FromList({0.0f});
  SgdOptimizer::Options options;
  options.lr = 0.1f;
  options.momentum = 0.0f;
  options.weight_decay = 0.5f;
  SgdOptimizer sgd({{"w", &w, &g}}, options);
  sgd.Step();
  EXPECT_FLOAT_EQ(w.flat(0), 10.0f - 0.1f * 0.5f * 10.0f);
}

TEST(SgdTest, ZeroGradClearsAll) {
  Tensor w({3});
  Tensor g = Tensor::Ones({3});
  SgdOptimizer sgd({{"w", &w, &g}}, {});
  sgd.ZeroGrad();
  EXPECT_FLOAT_EQ(Norm2(g), 0.0f);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  // Minimize f(w) = 0.5 * ||w - target||^2 by explicit gradient steps.
  Tensor w = Tensor::FromList({5.0f, -3.0f});
  Tensor g({2});
  Tensor target = Tensor::FromList({1.0f, 2.0f});
  SgdOptimizer::Options options;
  options.lr = 0.2f;
  options.momentum = 0.5f;
  SgdOptimizer sgd({{"w", &w, &g}}, options);
  for (int step = 0; step < 120; ++step) {
    for (int64_t i = 0; i < 2; ++i) g.flat(i) = w.flat(i) - target.flat(i);
    sgd.Step();
  }
  EXPECT_NEAR(w.flat(0), 1.0f, 1e-3f);
  EXPECT_NEAR(w.flat(1), 2.0f, 1e-3f);
}

// --- StepLrSchedule -------------------------------------------------------------

TEST(StepLrTest, DecaysAtMilestones) {
  StepLrSchedule schedule(0.1f, {30, 40}, 10.0f);
  EXPECT_FLOAT_EQ(schedule.LrForEpoch(0), 0.1f);
  EXPECT_FLOAT_EQ(schedule.LrForEpoch(29), 0.1f);
  EXPECT_FLOAT_EQ(schedule.LrForEpoch(30), 0.01f);
  EXPECT_FLOAT_EQ(schedule.LrForEpoch(39), 0.01f);
  EXPECT_FLOAT_EQ(schedule.LrForEpoch(40), 0.001f);
  EXPECT_FLOAT_EQ(schedule.LrForEpoch(100), 0.001f);
}

TEST(StepLrTest, NoMilestonesConstant) {
  StepLrSchedule schedule(0.05f, {});
  EXPECT_FLOAT_EQ(schedule.LrForEpoch(1000), 0.05f);
}

// --- End-to-end: logistic regression learns a linear rule --------------------

TEST(TrainingSmokeTest, LinearClassifierSeparatesTwoGaussians) {
  Rng rng(33);
  Linear model(2, 2, rng);
  SoftmaxCrossEntropy loss;
  SgdOptimizer::Options options;
  options.lr = 0.5f;
  options.momentum = 0.9f;
  SgdOptimizer sgd(model.Params(), options);

  auto make_batch = [&rng](Tensor& x, std::vector<int64_t>& y) {
    x = Tensor({32, 2});
    y.resize(32);
    for (int64_t i = 0; i < 32; ++i) {
      int64_t label = i % 2;
      float cx = label == 0 ? -1.0f : 1.0f;
      x.at(i, 0) = rng.Normal(cx, 0.4f);
      x.at(i, 1) = rng.Normal(-cx, 0.4f);
      y[static_cast<size_t>(i)] = label;
    }
  };

  float final_loss = 1e9f;
  for (int step = 0; step < 60; ++step) {
    Tensor x;
    std::vector<int64_t> y;
    make_batch(x, y);
    sgd.ZeroGrad();
    Tensor logits = model.Forward(x);
    final_loss = loss.Forward(logits, y);
    model.Backward(loss.Backward());
    sgd.Step();
  }
  EXPECT_LT(final_loss, 0.15f);
}

}  // namespace
}  // namespace dhgcn
