// Full two-stream action recognition on NTU-like data — the paper's main
// pipeline (Sec. 3.5): train independent joint and bone DHGCN models,
// then fuse their scores at evaluation.
//
// Usage: ./build/examples/action_recognition_ntu [xsub|xview|xset]
//        (default: xsub)

#include <cstdio>
#include <cstring>
#include <string>

#include "models/model_zoo.h"
#include "train/evaluator.h"
#include "train/experiment.h"

int main(int argc, char** argv) {
  using namespace dhgcn;

  SplitProtocol protocol = SplitProtocol::kCrossSubject;
  if (argc > 1) {
    if (std::strcmp(argv[1], "xview") == 0) {
      protocol = SplitProtocol::kCrossView;
    } else if (std::strcmp(argv[1], "xset") == 0) {
      protocol = SplitProtocol::kCrossSetup;
    } else if (std::strcmp(argv[1], "xsub") != 0) {
      std::fprintf(stderr, "usage: %s [xsub|xview|xset]\n", argv[0]);
      return 1;
    }
  }

  SyntheticDataConfig data_config = NtuLikeConfig(
      /*num_classes=*/5, /*samples_per_class=*/20, /*num_frames=*/16,
      /*seed=*/11);
  if (protocol == SplitProtocol::kCrossSetup) {
    data_config.num_setups = 8;  // NTU-120-style setup variety
  }
  SkeletonDataset dataset =
      SkeletonDataset::Generate(data_config).ValueOrDie();
  DatasetSplit split = MakeSplit(dataset, protocol);
  std::printf("protocol %s: %lld train / %lld test samples\n",
              SplitProtocolName(protocol).c_str(),
              static_cast<long long>(split.train.size()),
              static_cast<long long>(split.test.size()));

  ModelZooOptions zoo;
  zoo.scale.channels = {16, 32, 64};
  zoo.scale.strides = {1, 2, 2};
  zoo.scale.dropout = 0.0f;
  zoo.kn = 3;
  zoo.km = 4;

  TrainOptions train_options;
  train_options.epochs = 16;
  train_options.initial_lr = 0.05f;
  train_options.lr_milestones = {10, 13};

  std::printf("training joint stream...\n");
  TwoStreamEval result = RunTwoStreamExperiment(
      [&] {
        return CreateModel(ModelKind::kDhgcn, dataset.layout_type(),
                           dataset.num_classes(), zoo);
      },
      dataset, split, train_options, /*batch_size=*/8, /*seed=*/13);

  std::printf("\n%-16s top-1 %.1f%%  top-5 %.1f%%\n", "DHGCN(joint):",
              100.0 * result.joint.top1, 100.0 * result.joint.top5);
  std::printf("%-16s top-1 %.1f%%  top-5 %.1f%%\n", "DHGCN(bone):",
              100.0 * result.bone.top1, 100.0 * result.bone.top5);
  std::printf("%-16s top-1 %.1f%%  top-5 %.1f%%\n", "DHGCN(fused):",
              100.0 * result.fused.top1, 100.0 * result.fused.top5);
  return 0;
}
