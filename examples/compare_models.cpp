// Train every architecture in the model zoo on the same synthetic
// NTU-like dataset and print a leaderboard — a minimal version of the
// paper's Tab. 7 on a workload that runs in a couple of minutes.
//
// Usage: ./build/examples/compare_models [epochs]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "base/string_util.h"
#include "models/model_zoo.h"
#include "train/experiment.h"
#include "train/table.h"

int main(int argc, char** argv) {
  using namespace dhgcn;

  int64_t epochs = argc > 1 ? std::atoll(argv[1]) : 12;
  if (epochs <= 0) {
    std::fprintf(stderr, "usage: %s [epochs>0]\n", argv[0]);
    return 1;
  }

  SkeletonDataset dataset =
      SkeletonDataset::Generate(
          NtuLikeConfig(/*num_classes=*/4, /*samples_per_class=*/16,
                        /*num_frames=*/16, /*seed=*/23))
          .ValueOrDie();
  DatasetSplit split = MakeSplit(dataset, SplitProtocol::kCrossSubject);

  ModelZooOptions zoo;
  zoo.scale.channels = {12, 24, 32};
  zoo.scale.strides = {1, 2, 1};
  zoo.scale.dropout = 0.0f;
  zoo.kn = 3;
  zoo.km = 4;

  TrainOptions train_options;
  train_options.epochs = epochs;
  train_options.initial_lr = 0.05f;
  train_options.lr_milestones = {epochs * 3 / 5, epochs * 4 / 5};

  struct Entry {
    ModelKind kind;
    double top1;
    int64_t params;
  };
  std::vector<Entry> entries;
  for (ModelKind kind :
       {ModelKind::kTcn, ModelKind::kStgcn, ModelKind::kAgcn,
        ModelKind::kAhgcn, ModelKind::kPbgcn4, ModelKind::kPbhgcn4,
        ModelKind::kDhgcn}) {
    LayerPtr model = CreateModel(kind, dataset.layout_type(),
                                 dataset.num_classes(), zoo);
    int64_t params = model->ParameterCount();
    std::printf("training %-14s (%lld params)...\n",
                ModelKindName(kind).c_str(),
                static_cast<long long>(params));
    EvalMetrics metrics = TrainAndEvaluateStream(
        *model, dataset, split, InputStream::kJoint, train_options,
        /*batch_size=*/8, /*seed=*/29);
    entries.push_back({kind, metrics.top1, params});
  }

  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.top1 > b.top1; });
  TextTable table({"Rank", "Method", "X-Sub Top-1", "Params"});
  for (size_t i = 0; i < entries.size(); ++i) {
    table.AddRow({std::to_string(i + 1), ModelKindName(entries[i].kind),
                  FormatPercent(entries[i].top1) + "%",
                  std::to_string(entries[i].params)});
  }
  std::printf("\n");
  table.Print(std::cout);
  return 0;
}
