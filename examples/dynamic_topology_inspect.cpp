// Inspect the dynamic hypergraph machinery on one synthetic sample — the
// data behind Fig. 1(d) (dynamic joint weights from moving distances) and
// Fig. 1(e) (K-NN + K-means dynamic topology).
//
// Usage: ./build/examples/dynamic_topology_inspect [frame_index]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/dynamic_joint_weight.h"
#include "core/dynamic_topology.h"
#include "core/static_hypergraph.h"
#include "data/synthetic_generator.h"
#include "hypergraph/hypergraph_conv.h"
#include "tensor/tensor_ops.h"

int main(int argc, char** argv) {
  using namespace dhgcn;

  int64_t frame = argc > 1 ? std::atoll(argv[1]) : 8;
  const int64_t num_frames = 16;
  if (frame < 0 || frame >= num_frames) {
    std::fprintf(stderr, "frame index must be in [0, %lld)\n",
                 static_cast<long long>(num_frames));
    return 1;
  }

  // One "kicking"-style synthetic sample on the NTU-25 skeleton.
  SyntheticSkeletonGenerator generator(
      NtuLikeConfig(/*num_classes=*/5, /*samples_per_class=*/1, num_frames,
                    /*seed=*/21));
  SkeletonSample sample = generator.GenerateSample(
      /*label=*/2, /*subject=*/0, /*camera=*/1, /*setup=*/0,
      /*instance_seed=*/5);
  const SkeletonLayout& layout = generator.layout();
  const MotionPrototype& proto = generator.PrototypeFor(2);

  std::printf("sample: class 2, %lld joints, %lld frames\n",
              static_cast<long long>(layout.num_joints),
              static_cast<long long>(num_frames));
  std::printf("class-2 motion drivers:");
  for (const MotionDriver& driver : proto.drivers) {
    std::printf(" %s(f=%.2f,a=%.2f)",
                layout.joint_names[static_cast<size_t>(driver.joint)]
                    .c_str(),
                driver.frequency, driver.amplitude);
  }
  std::printf("\n\n");

  // --- Fig. 1(d): dynamic joint weights from moving distance (Eq. 6-7).
  Tensor batch = sample.data.Reshape({1, 3, num_frames, layout.num_joints});
  Tensor distances = MovingDistances(batch);  // (1, T, V)
  std::printf("per-joint moving distance at frame %lld (Eq. 6):\n",
              static_cast<long long>(frame));
  for (int64_t j = 0; j < layout.num_joints; ++j) {
    float d = distances.at(0, frame, j);
    int bar = static_cast<int>(d * 400.0f);
    if (bar > 40) bar = 40;
    std::printf("  %-16s %7.4f %s\n",
                layout.joint_names[static_cast<size_t>(j)].c_str(), d,
                std::string(static_cast<size_t>(bar), '#').c_str());
  }

  Hypergraph static_graph = StaticSkeletonHypergraph(layout);
  Tensor frame_distances({layout.num_joints});
  for (int64_t j = 0; j < layout.num_joints; ++j) {
    frame_distances.flat(j) = distances.at(0, frame, j);
  }
  Tensor imp = JointWeightIncidence(frame_distances, static_graph);
  std::printf("\nweighted incidence Imp = W_all .* H (Eq. 8), per "
              "hyperedge shares:\n");
  for (int64_t e = 0; e < static_graph.num_edges(); ++e) {
    std::printf("  hyperedge %lld:", static_cast<long long>(e));
    for (int64_t j : static_graph.edges()[static_cast<size_t>(e)]) {
      std::printf(" %s=%.2f",
                  layout.joint_names[static_cast<size_t>(j)].c_str(),
                  imp.at(j, e));
    }
    std::printf("\n");
  }

  // --- Fig. 1(e): dynamic topology from K-NN + K-means (Sec. 3.4).
  Tensor frame_features({layout.num_joints, 3});
  for (int64_t j = 0; j < layout.num_joints; ++j) {
    for (int64_t c = 0; c < 3; ++c) {
      frame_features.at(j, c) = sample.data.at(c, frame, j);
    }
  }
  DynamicTopologyOptions options;  // paper best: kn=3, km=4
  Hypergraph dynamic =
      DynamicTopologyHypergraph(frame_features, options, frame);
  std::printf("\ndynamic topology at frame %lld: %lld hyperedges "
              "(%lld K-NN + %lld K-means)\n",
              static_cast<long long>(frame),
              static_cast<long long>(dynamic.num_edges()),
              static_cast<long long>(layout.num_joints),
              static_cast<long long>(options.km));
  std::printf("K-means (global information) hyperedges:\n");
  for (int64_t e = layout.num_joints; e < dynamic.num_edges(); ++e) {
    std::printf("  {");
    bool first = true;
    for (int64_t j : dynamic.edges()[static_cast<size_t>(e)]) {
      std::printf("%s%s", first ? "" : ", ",
                  layout.joint_names[static_cast<size_t>(j)].c_str());
      first = false;
    }
    std::printf("}\n");
  }

  Tensor op = NormalizedHypergraphOperator(dynamic);
  std::printf("\nnormalized dynamic operator: %lldx%lld, max entry %.3f, "
              "symmetric: %s\n",
              static_cast<long long>(op.dim(0)),
              static_cast<long long>(op.dim(1)), MaxAll(op),
              AllClose(op, Transpose2D(op)) ? "yes" : "no");
  return 0;
}
