// Quickstart: the smallest end-to-end DHGCN program.
//
//   1. Generate a synthetic skeleton-action dataset (NTU-25 layout).
//   2. Build a small DHGCN classifier.
//   3. Train it for a few epochs with the paper's SGD recipe.
//   4. Evaluate Top-1 / Top-5 accuracy on held-out samples.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/dhgcn_model.h"
#include "data/dataloader.h"
#include "data/dataset.h"
#include "train/evaluator.h"
#include "train/experiment.h"
#include "train/trainer.h"

int main() {
  using namespace dhgcn;

  // 1. Data: 4 synthetic action classes, 16 samples each, 16 frames.
  SyntheticDataConfig data_config =
      NtuLikeConfig(/*num_classes=*/4, /*samples_per_class=*/16,
                    /*num_frames=*/16, /*seed=*/7);
  Result<SkeletonDataset> dataset = SkeletonDataset::Generate(data_config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  DatasetSplit split = dataset->RandomSplit(/*test_fraction=*/0.25f, 1);
  std::printf("dataset: %lld samples, %lld train / %lld test\n",
              static_cast<long long>(dataset->size()),
              static_cast<long long>(split.train.size()),
              static_cast<long long>(split.test.size()));

  // 2. Model: a 3-block DHGCN with the paper's best k_n=3, k_m=4.
  DhgcnConfig model_config =
      DhgcnConfig::Small(SkeletonLayoutType::kNtu25, /*num_classes=*/4);
  model_config.blocks = {{12, 1, 1}, {24, 2, 1}, {32, 1, 2}};
  model_config.topology.kn = 3;
  model_config.topology.km = 4;
  Result<std::unique_ptr<DhgcnModel>> model = DhgcnModel::Make(model_config);
  if (!model.ok()) {
    std::fprintf(stderr, "model: %s\n", model.status().ToString().c_str());
    return 1;
  }
  std::printf("model: %s with %lld parameters\n",
              (*model)->name().c_str(),
              static_cast<long long>((*model)->ParameterCount()));

  // 3. Train on the joint stream.
  DataLoader train_loader(&*dataset, split.train, /*batch_size=*/8,
                          InputStream::kJoint, /*shuffle=*/true, Rng(3));
  TrainOptions train_options;
  train_options.epochs = 16;
  train_options.initial_lr = 0.05f;
  train_options.lr_milestones = {10, 13};
  train_options.verbose = false;
  Trainer trainer(model->get(), train_options);
  for (int64_t epoch = 0; epoch < train_options.epochs; ++epoch) {
    EpochStats stats = trainer.TrainEpoch(train_loader, epoch).ValueOrDie();
    std::printf("epoch %2lld  loss %.3f  train-top1 %.1f%%\n",
                static_cast<long long>(epoch), stats.mean_loss,
                100.0 * stats.train_top1);
  }

  // 4. Evaluate.
  DataLoader test_loader(&*dataset, split.test, 8, InputStream::kJoint,
                         /*shuffle=*/false);
  EvalMetrics metrics = Evaluate(**model, test_loader);
  std::printf("\nheld-out: top-1 %.1f%%  top-5 %.1f%%  (%lld samples)\n",
              100.0 * metrics.top1, 100.0 * metrics.top5,
              static_cast<long long>(metrics.count));
  return 0;
}
