// Int8 quantized inference benchmarks (recorded in BENCH_int8.json).
//
// Two comparisons, both against the fp32 path the int8 path replaces:
//   Gemm{Fp32,Int8} — the packed cache-blocked kernels head to head,
//     single-threaded to isolate the kernel. The int8 side times what a
//     plan replay actually pays per call: per-row activation
//     quantization plus the u8 x s8 GEMM against pre-packed weight
//     panels (weights pack once at freeze time, so pack cost is
//     excluded; the fp32 MatMul packs per call, which is also exactly
//     what its replay pays). Items processed = MACs, so the reported
//     items_per_second are GMAC/s and the int8/fp32 ratio is the
//     kernel speedup — the ≥2x acceptance gate of DESIGN.md §15.
//   EvalPlan{Fp32Fused,Int8} — end-to-end eval-mode replay of the same
//     model through the fused fp32 plan and the quantized plan; items
//     processed = clips, so items_per_second is eval throughput.
//
//   ./bench_int8 --benchmark_filter=Gemm

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "base/rng.h"
#include "base/thread_pool.h"
#include "core/dhgcn_model.h"
#include "plan/plan_builder.h"
#include "plan/plan_runner.h"
#include "quant/calibration.h"
#include "quant/quant.h"
#include "quant/quantize_pass.h"
#include "tensor/gemm_kernel_int8.h"
#include "tensor/linalg.h"
#include "tensor/tensor.h"

namespace dhgcn {
namespace {

void BM_GemmFp32(benchmark::State& state) {
  ThreadPool::Get().SetThreads(1);
  int64_t n = state.range(0);
  Rng rng(30);
  Tensor a = Tensor::RandomNormal({n, n}, rng);
  Tensor b = Tensor::RandomNormal({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmFp32)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmInt8(benchmark::State& state) {
  ThreadPool::Get().SetThreads(1);
  int64_t n = state.range(0);
  const int64_t k_pad = detail::Int8KPad(n);
  Rng rng(31);
  Tensor a = Tensor::RandomNormal({n, n}, rng);
  const float act_scale = ActScaleFromAbsMax(4.0f);

  // Weights quantize and pack once at freeze time.
  std::vector<float> w(n * n);
  for (auto& v : w) v = rng.Uniform() * 2.0f - 1.0f;
  std::vector<int8_t> wq(n * n);
  std::vector<float> wscale(n);
  QuantizeWeightsPerChannel(w.data(), n, n, wq.data(), wscale.data());
  std::vector<int8_t> bp(detail::Int8PackedBCount(n, n));
  detail::Int8PackB(wq.data(), n, n, bp.data());

  std::vector<uint8_t> qa(n * k_pad, 128);
  std::vector<int32_t> c(n * n);
  for (auto _ : state) {
    for (int64_t i = 0; i < n; ++i) {
      QuantizeActivations(a.data() + i * n, n, act_scale,
                          qa.data() + i * k_pad);
    }
    detail::Int8GemmPackedB(qa.data(), k_pad, bp.data(), c.data(), n,
                            k_pad, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  state.counters["avx2"] = detail::Int8GemmHasAvx2() ? 1 : 0;
}
BENCHMARK(BM_GemmInt8)->Arg(64)->Arg(128)->Arg(256);

// --- End-to-end eval throughput --------------------------------------

DhgcnConfig BenchConfig() {
  return DhgcnConfig::Small(SkeletonLayoutType::kKinetics18,
                            /*num_classes=*/8);
}

Tensor MakeBenchInput(uint64_t seed = 3) {
  Rng rng(seed);
  return Tensor::RandomNormal({4, 3, 16, 18}, rng);
}

void BM_EvalPlanFp32Fused(benchmark::State& state) {
  DhgcnModel model(BenchConfig());
  model.SetTraining(false);
  Tensor x = MakeBenchInput();
  PlanRunner runner(
      BuildInferencePlan(model, x.shape(), PlanMode::kFused)
          .ValueOrDie());
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.Run(x));
  }
  state.SetItemsProcessed(state.iterations() * x.shape()[0]);
}
BENCHMARK(BM_EvalPlanFp32Fused)->Unit(benchmark::kMillisecond);

void BM_EvalPlanInt8(benchmark::State& state) {
  DhgcnModel model(BenchConfig());
  model.SetTraining(false);
  Tensor x = MakeBenchInput();
  QuantCalibration calib =
      CalibrateOnInputs(model, {x}).ValueOrDie();
  PlanRunner runner(
      BuildInt8InferencePlan(model, x.shape(), calib).ValueOrDie());
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.Run(x));
  }
  state.SetItemsProcessed(state.iterations() * x.shape()[0]);
}
BENCHMARK(BM_EvalPlanInt8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dhgcn

BENCHMARK_MAIN();
