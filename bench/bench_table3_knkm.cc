// Reproduces Tab. 3: "The performance of our model with different
// settings" — the (k_n, k_m) sweep over the dynamic-topology parameters.
// k_n = joints per K-NN hyperedge, k_m = number of K-means hyperedges.
// Paper best: (3, 4). Single (joint) stream at bench scale; the sweep's
// relative ordering is the claim under test.

#include "bench/bench_common.h"

namespace dhgcn::bench {
namespace {

struct Tab3Row {
  int64_t kn;
  int64_t km;
  std::string kin_top1_paper, kin_top5_paper, xsub_paper, xview_paper;
  double kin_top1 = 0, kin_top5 = 0, xsub = 0, xview = 0;
};

int Run() {
  WallTimer timer;
  BenchScale scale = GetBenchScale();
  PrintHeader("Table 3: dynamic-topology (k_n, k_m) sweep",
              "Tab. 3 (DHGCN with different k_n / k_m)", scale);

  SkeletonDataset kinetics = MakeKineticsLike(scale);
  SkeletonDataset ntu = MakeNtuLike(scale);
  DatasetSplit kin_split = MakeSplit(kinetics, SplitProtocol::kRandom, 2);
  DatasetSplit xsub = MakeSplit(ntu, SplitProtocol::kCrossSubject);
  DatasetSplit xview = MakeSplit(ntu, SplitProtocol::kCrossView);

  std::vector<Tab3Row> rows = {
      {2, 3, "37.0", "59.6", "90.1", "95.1"},
      {2, 4, "37.2", "60.1", "90.3", "95.4"},
      {2, 5, "36.8", "59.7", "90.1", "95.2"},
      {3, 3, "37.2", "60.2", "90.3", "95.6"},
      {4, 3, "36.9", "59.7", "90.0", "95.2"},
      {3, 4, "37.7", "60.6", "90.7", "96.0"},
  };

  std::printf("Training DHGCN at %zu (k_n,k_m) settings x 3 splits...\n\n",
              rows.size());
  for (Tab3Row& row : rows) {
    ModelZooOptions zoo = BenchZoo(301);
    zoo.kn = row.kn;
    zoo.km = row.km;
    auto run = [&](const SkeletonDataset& dataset,
                   const DatasetSplit& split, uint64_t seed) {
      LayerPtr model = CreateModel(ModelKind::kDhgcn, dataset.layout_type(),
                                   dataset.num_classes(), zoo);
      return TrainAndEvaluateStream(*model, dataset, split,
                                    InputStream::kJoint,
                                    BenchTrainOptions(scale),
                                    scale.batch_size, seed);
    };
    EvalMetrics kin = run(kinetics, kin_split, 311);
    row.kin_top1 = kin.top1;
    row.kin_top5 = kin.top5;
    row.xsub = run(ntu, xsub, 313).top1;
    row.xview = run(ntu, xview, 317).top1;
    std::printf("  (kn=%lld, km=%lld): Kin %.3f/%.3f  X-Sub %.3f  "
                "X-View %.3f\n",
                static_cast<long long>(row.kn),
                static_cast<long long>(row.km), row.kin_top1, row.kin_top5,
                row.xsub, row.xview);
  }

  TextTable table({"Setting", "Kin Top1 (paper/ours)",
                   "Kin Top5 (paper/ours)", "X-Sub (paper/ours)",
                   "X-View (paper/ours)"});
  for (const Tab3Row& row : rows) {
    table.AddRow({StrCat("DHGCN(kn=", row.kn, ",km=", row.km, ")"),
                  StrCat(row.kin_top1_paper, " / ", Pct(row.kin_top1)),
                  StrCat(row.kin_top5_paper, " / ", Pct(row.kin_top5)),
                  StrCat(row.xsub_paper, " / ", Pct(row.xsub)),
                  StrCat(row.xview_paper, " / ", Pct(row.xview))});
  }
  std::printf("\n");
  table.Print(std::cout);

  const Tab3Row& best = rows.back();  // (3, 4)
  auto average = [](const Tab3Row& row) {
    return (row.kin_top1 + row.xsub + row.xview) / 3.0;
  };
  std::printf("\nShape claims (paper: (3,4) is the best setting):\n");
  int wins = 0;
  for (size_t i = 0; i + 1 < rows.size(); ++i) {
    if (average(best) >= average(rows[i])) ++wins;
  }
  Verdict(StrCat("(3,4) beats or ties the majority of other settings "
                 "on mean accuracy (", wins, "/", rows.size() - 1, ")"),
          wins * 2 >= static_cast<int>(rows.size() - 1));

  PrintFooter(timer);
  return 0;
}

}  // namespace
}  // namespace dhgcn::bench

int main() { return dhgcn::bench::Run(); }
