// Reproduces Tab. 5: "The performance comparison of DHGCN with different
// input data" — joint stream vs bone stream vs the two-stream fusion, on
// Kinetics-like and NTU-60-like data. Paper: fusion beats both single
// streams on every benchmark.

#include "bench/bench_common.h"

namespace dhgcn::bench {
namespace {

int Run() {
  WallTimer timer;
  BenchScale scale = GetBenchScale();
  PrintHeader("Table 5: joint / bone / two-stream fusion",
              "Tab. 5 (DHGCN input-stream ablation)", scale);

  SkeletonDataset kinetics = MakeKineticsLike(scale);
  SkeletonDataset ntu = MakeNtuLike(scale);
  DatasetSplit kin_split = MakeSplit(kinetics, SplitProtocol::kRandom, 2);
  DatasetSplit xsub = MakeSplit(ntu, SplitProtocol::kCrossSubject);
  DatasetSplit xview = MakeSplit(ntu, SplitProtocol::kCrossView);

  std::printf("Training DHGCN two-stream on 3 splits...\n\n");
  TwoStreamEval kin = RunTwoStream(ModelKind::kDhgcn, kinetics, kin_split,
                                   scale, 501);
  TwoStreamEval sub = RunTwoStream(ModelKind::kDhgcn, ntu, xsub, scale,
                                   503);
  TwoStreamEval view = RunTwoStream(ModelKind::kDhgcn, ntu, xview, scale,
                                    507);

  TextTable table({"Method", "Kin Top1 (paper/ours)",
                   "Kin Top5 (paper/ours)", "X-Sub (paper/ours)",
                   "X-View (paper/ours)"});
  table.AddRow({"DHGCN(joint)", StrCat("35.9 / ", Pct(kin.joint.top1)),
                StrCat("58.0 / ", Pct(kin.joint.top5)),
                StrCat("88.6 / ", Pct(sub.joint.top1)),
                StrCat("94.8 / ", Pct(view.joint.top1))});
  table.AddRow({"DHGCN(bone)", StrCat("35.5 / ", Pct(kin.bone.top1)),
                StrCat("58.2 / ", Pct(kin.bone.top5)),
                StrCat("89.0 / ", Pct(sub.bone.top1)),
                StrCat("94.5 / ", Pct(view.bone.top1))});
  table.AddRow({"DHGCN", StrCat("37.7 / ", Pct(kin.fused.top1)),
                StrCat("60.6 / ", Pct(kin.fused.top5)),
                StrCat("90.7 / ", Pct(sub.fused.top1)),
                StrCat("96.0 / ", Pct(view.fused.top1))});
  table.Print(std::cout);

  std::printf("\nShape claims (paper: fusion beats each single stream):\n");
  Verdict("fused >= joint on Kinetics-like",
          kin.fused.top1 >= kin.joint.top1 - 1e-9);
  Verdict("fused >= bone on Kinetics-like",
          kin.fused.top1 >= kin.bone.top1 - 1e-9);
  Verdict("fused >= joint on NTU-like X-Sub",
          sub.fused.top1 >= sub.joint.top1 - 1e-9);
  Verdict("fused >= bone on NTU-like X-Sub",
          sub.fused.top1 >= sub.bone.top1 - 1e-9);
  Verdict("fused >= joint on NTU-like X-View",
          view.fused.top1 >= view.joint.top1 - 1e-9);
  Verdict("fused >= bone on NTU-like X-View",
          view.fused.top1 >= view.bone.top1 - 1e-9);

  PrintFooter(timer);
  return 0;
}

}  // namespace
}  // namespace dhgcn::bench

int main() { return dhgcn::bench::Run(); }
