// Sparse-execution benchmarks (recorded in BENCH_sparse.json):
//
// 1. The SpMM-vs-blocked-GEMM density sweep that calibrates
//    `SparseRouter::kDefaultDensityThreshold`: `BM_SpMMIntoDensity`
//    against `BM_DenseGemmBaseline` at the same shape. The crossover is
//    the density where the CSR kernel stops beating the dense product;
//    below ~10% the sparse kernel must be >= 2x faster (the acceptance
//    bar for this subsystem).
// 2. The routed operator: `VertexMix` forward with the router forced
//    on vs off across operator densities, on the model's own (V, V)
//    aggregation shape.
// 3. End-to-end: training steps/sec with `--sparse auto` semantics on a
//    magnitude-pruned model vs the dense baseline — the payoff of
//    pruning + density routing together.

#include <benchmark/benchmark.h>

#include "base/rng.h"
#include "base/thread_pool.h"
#include "core/dhgcn_model.h"
#include "hypergraph/hypergraph_conv.h"
#include "tensor/linalg.h"
#include "tensor/sparse.h"
#include "tensor/sparse_router.h"
#include "tensor/tensor_ops.h"
#include "train/pruner.h"

namespace dhgcn {
namespace {

Tensor RandomAtDensity(const Shape& shape, double density, Rng& rng) {
  Tensor t({shape});
  t.Fill(0.0f);
  for (int64_t i = 0; i < t.numel(); ++i) {
    if (rng.Uniform() < static_cast<float>(density)) t.flat(i) = rng.Normal();
  }
  return t;
}

// --- 1. Density sweep: CSR SpMM vs the blocked dense GEMM -------------
//
// Both single-threaded into pre-allocated outputs, so the ratio
// isolates kernel cost. range(0) = matrix size, range(1) = density in
// percent.

void BM_SpMMIntoDensity(benchmark::State& state) {
  ThreadPool::Get().SetThreads(1);
  int64_t n = state.range(0);
  double density = static_cast<double>(state.range(1)) / 100.0;
  Rng rng(61);
  Tensor a = RandomAtDensity({n, n}, density, rng);
  Tensor b = Tensor::RandomNormal({n, n}, rng);
  CsrMatrix a_csr = CsrMatrix::FromDense(a);
  Tensor c({n, n});
  for (auto _ : state) {
    SpMMInto(a_csr, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_SpMMIntoDensity)
    ->ArgsProduct({{64, 256}, {1, 5, 10, 20, 30, 40, 50, 75, 100}});

void BM_DenseGemmBaseline(benchmark::State& state) {
  ThreadPool::Get().SetThreads(1);
  int64_t n = state.range(0);
  Rng rng(62);
  // Same nonzero structure as the sparse benchmark at 100% density; the
  // blocked kernel's cost is density-independent.
  Tensor a = Tensor::RandomNormal({n, n}, rng);
  Tensor b = Tensor::RandomNormal({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    MatMulInto(a, b, &c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_DenseGemmBaseline)->Arg(64)->Arg(256);

// --- 2. The routed operator at model shape ----------------------------

void BM_VertexMixRouted(benchmark::State& state) {
  ThreadPool::Get().SetThreads(1);
  bool routed = state.range(0) != 0;
  double density = static_cast<double>(state.range(1)) / 100.0;
  SparseMode saved = SparseRouter::Get().mode();
  SparseRouter::Get().set_mode(routed ? SparseMode::kOn : SparseMode::kOff);
  Rng rng(63);
  Tensor op = RandomAtDensity({25, 25}, density, rng);
  VertexMix mix(op.Clone());
  Tensor x = Tensor::RandomNormal({4, 32, 16, 25}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mix.Forward(x));
  }
  SparseRouter::Get().set_mode(saved);
}
BENCHMARK(BM_VertexMixRouted)
    ->ArgsProduct({{0, 1}, {5, 10, 35, 100}});

// --- 3. End-to-end: pruned training step, sparse auto vs off ----------
//
// The model's mix weights are magnitude-pruned to range(1)% sparsity
// (the Pruner keeps them genuinely zero), then a forward+backward step
// runs with the router in auto (range(0)=1) or off (range(0)=0). The
// steps/sec ratio is the end-to-end payoff of density routing on a
// pruned model.

void BM_PrunedTrainStep(benchmark::State& state) {
  ThreadPool::Get().SetThreads(1);
  bool sparse_auto = state.range(0) != 0;
  double sparsity = static_cast<double>(state.range(1)) / 100.0;
  SparseMode saved = SparseRouter::Get().mode();
  SparseRouter::Get().set_mode(sparse_auto ? SparseMode::kAuto
                                           : SparseMode::kOff);

  DhgcnConfig config = DhgcnConfig::Tiny(SkeletonLayoutType::kNtu25, 5);
  config.topology.kn = 2;
  config.topology.km = 2;
  DhgcnModel model(config);
  if (sparsity > 0.0) {
    PruneOptions prune;
    prune.enabled = true;
    prune.target_sparsity = sparsity;
    prune.start_epoch = 0;
    Pruner pruner(&model, prune);
    pruner.OnEpochBegin(0);
  }
  Rng rng(64);
  Tensor x = Tensor::RandomNormal({2, 3, 12, 25}, rng, 0.0f, 0.3f);
  Tensor g = Tensor::RandomNormal({2, 5}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Forward(x));
    benchmark::DoNotOptimize(model.Backward(g));
  }
  state.SetItemsProcessed(state.iterations());
  SparseRouter::Get().set_mode(saved);
}
BENCHMARK(BM_PrunedTrainStep)
    ->ArgsProduct({{0, 1}, {0, 80}});

}  // namespace
}  // namespace dhgcn

BENCHMARK_MAIN();
