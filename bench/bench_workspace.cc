// Planned (workspace-arena) vs legacy (allocating) execution benchmarks.
//
// The pairs below measure the same computation through both paths: the
// legacy path allocates a fresh owning tensor for every activation, the
// planned path borrows everything from a per-step arena that is reset at
// the step boundary. Values are bit-identical; only allocation behavior
// and therefore throughput differ.
//
//   ./bench_workspace --benchmark_filter=TrainingStep

#include <vector>

#include "benchmark/benchmark.h"

#include "base/rng.h"
#include "core/dhgcn_model.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/tensor.h"
#include "tensor/workspace.h"

namespace dhgcn {
namespace {

DhgcnModel MakeBenchModel() {
  DhgcnConfig config =
      DhgcnConfig::Tiny(SkeletonLayoutType::kKinetics18, /*num_classes=*/8);
  return DhgcnModel(config);
}

Tensor MakeBenchInput(uint64_t seed = 3) {
  Rng rng(seed);
  return Tensor::RandomNormal({4, 3, 16, 18}, rng);
}

// --- Full training step (forward + loss + backward + SGD update) ----------------------

void BM_TrainingStepLegacy(benchmark::State& state) {
  DhgcnModel model = MakeBenchModel();
  SoftmaxCrossEntropy loss;
  SgdOptimizer optimizer(model.Params(), {.lr = 0.01f});
  Tensor x = MakeBenchInput();
  std::vector<int64_t> labels = {0, 2, 5, 7};
  for (auto _ : state) {
    optimizer.ZeroGrad();
    Tensor logits = model.Forward(x);
    benchmark::DoNotOptimize(loss.TryForward(logits, labels).ValueOrDie());
    benchmark::DoNotOptimize(model.Backward(loss.Backward()));
    optimizer.Step();
  }
}
BENCHMARK(BM_TrainingStepLegacy)->Unit(benchmark::kMillisecond);

void BM_TrainingStepPlanned(benchmark::State& state) {
  DhgcnModel model = MakeBenchModel();
  SoftmaxCrossEntropy loss;
  SgdOptimizer optimizer(model.Params(), {.lr = 0.01f});
  Tensor x = MakeBenchInput();
  std::vector<int64_t> labels = {0, 2, 5, 7};
  Workspace ws;
  for (auto _ : state) {
    ws.Reset();
    optimizer.ZeroGrad();
    Tensor logits;
    model.ForwardInto(x, ws, &logits);
    benchmark::DoNotOptimize(loss.TryForward(logits, labels, ws).ValueOrDie());
    Tensor grad_input;
    model.BackwardInto(loss.Backward(ws), ws, &grad_input);
    benchmark::DoNotOptimize(grad_input);
    optimizer.Step();
  }
}
BENCHMARK(BM_TrainingStepPlanned)->Unit(benchmark::kMillisecond);

// --- Inference step -------------------------------------------------------------------

void BM_InferenceLegacy(benchmark::State& state) {
  DhgcnModel model = MakeBenchModel();
  model.SetTraining(false);
  Tensor x = MakeBenchInput();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Forward(x));
  }
}
BENCHMARK(BM_InferenceLegacy)->Unit(benchmark::kMillisecond);

void BM_InferencePlanned(benchmark::State& state) {
  DhgcnModel model = MakeBenchModel();
  model.SetTraining(false);
  Tensor x = MakeBenchInput();
  Workspace ws;
  for (auto _ : state) {
    ws.Reset();
    Tensor logits;
    model.ForwardInto(x, ws, &logits);
    benchmark::DoNotOptimize(logits);
  }
}
BENCHMARK(BM_InferencePlanned)->Unit(benchmark::kMillisecond);

// --- Single-layer pairs (isolate the allocator's share per op) ------------------------

void BM_LinearForwardLegacy(benchmark::State& state) {
  Rng rng(5);
  Linear layer(256, 256, rng);
  Tensor x = Tensor::RandomNormal({64, 256}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(layer.Forward(x));
  }
}
BENCHMARK(BM_LinearForwardLegacy);

void BM_LinearForwardPlanned(benchmark::State& state) {
  Rng rng(5);
  Linear layer(256, 256, rng);
  Tensor x = Tensor::RandomNormal({64, 256}, rng);
  Workspace ws;
  for (auto _ : state) {
    ws.Reset();
    Tensor y;
    layer.ForwardInto(x, ws, &y);
    benchmark::DoNotOptimize(y);
  }
}
BENCHMARK(BM_LinearForwardPlanned);

void BM_ConvPointwiseLegacy(benchmark::State& state) {
  Rng rng(6);
  Conv2d conv(32, 32, Conv2dOptions{}, rng);
  Tensor x = Tensor::RandomNormal({4, 32, 16, 18}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x));
  }
}
BENCHMARK(BM_ConvPointwiseLegacy);

void BM_ConvPointwisePlanned(benchmark::State& state) {
  Rng rng(6);
  Conv2d conv(32, 32, Conv2dOptions{}, rng);
  Tensor x = Tensor::RandomNormal({4, 32, 16, 18}, rng);
  Workspace ws;
  for (auto _ : state) {
    ws.Reset();
    Tensor y;
    conv.ForwardInto(x, ws, &y);
    benchmark::DoNotOptimize(y);
  }
}
BENCHMARK(BM_ConvPointwisePlanned);

}  // namespace
}  // namespace dhgcn

BENCHMARK_MAIN();
