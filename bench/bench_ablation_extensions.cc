// Ablation benches for the design choices and extensions DESIGN.md calls
// out beyond the paper's own tables:
//
//   (a) Multi-stream fusion: the paper fuses joint + bone; its
//       conclusion points at richer inputs. We compare each single
//       stream, the paper's 2-stream fusion, and a 4-stream fusion that
//       adds the motion (temporal difference) streams.
//   (b) View normalization: the 3-D body-frame pre-normalization used by
//       real NTU pipelines, with the X-View protocol — the case it
//       exists for.
//   (c) Training-time augmentation: the standard skeleton augmentation
//       pipeline on/off.

#include "bench/bench_common.h"

namespace dhgcn::bench {
namespace {

int Run() {
  WallTimer timer;
  BenchScale scale = GetBenchScale();
  PrintHeader("Extension ablations: streams / view-norm / augmentation",
              "design-choice ablations (DESIGN.md)", scale);

  SkeletonDataset ntu = MakeNtuLike(scale);
  DatasetSplit xsub = MakeSplit(ntu, SplitProtocol::kCrossSubject);
  DatasetSplit xview = MakeSplit(ntu, SplitProtocol::kCrossView);
  ModelZooOptions zoo = BenchZoo(901);
  TrainOptions train_options = BenchTrainOptions(scale);

  // --- (a) Multi-stream fusion -------------------------------------------
  std::printf("(a) training 4 DHGCN streams on X-Sub...\n");
  FourStreamEval streams = RunFourStreamExperiment(
      [&] {
        return CreateModel(ModelKind::kDhgcn, ntu.layout_type(),
                           ntu.num_classes(), zoo);
      },
      ntu, xsub, train_options, scale.batch_size, 903);
  TextTable stream_table({"Streams", "X-Sub Top-1"});
  stream_table.AddRow({"joint", Pct(streams.joint.top1)});
  stream_table.AddRow({"bone", Pct(streams.bone.top1)});
  stream_table.AddRow({"joint-motion", Pct(streams.joint_motion.top1)});
  stream_table.AddRow({"bone-motion", Pct(streams.bone_motion.top1)});
  stream_table.AddRow({"2-stream (paper)", Pct(streams.fused_two.top1)});
  stream_table.AddRow({"4-stream (extension)",
                       Pct(streams.fused_four.top1)});
  stream_table.Print(std::cout);
  Verdict("2-stream fusion >= best single stream",
          streams.fused_two.top1 >=
              std::max({streams.joint.top1, streams.bone.top1}) - 1e-9);
  Verdict("4-stream fusion >= weakest single stream",
          streams.fused_four.top1 >=
              std::min({streams.joint.top1, streams.bone.top1,
                        streams.joint_motion.top1,
                        streams.bone_motion.top1}) - 1e-9);

  // --- (b) View normalization on X-View -----------------------------------
  std::printf("\n(b) view normalization on vs off (ST-GCN, X-View)...\n");
  auto run_view = [&](bool view_normalize) {
    LayerPtr model = CreateModel(ModelKind::kStgcn, ntu.layout_type(),
                                 ntu.num_classes(), zoo);
    DataLoader train_loader(&ntu, xview.train, scale.batch_size,
                            InputStream::kJoint, /*shuffle=*/true,
                            Rng(905));
    DataLoader test_loader(&ntu, xview.test, scale.batch_size,
                           InputStream::kJoint, /*shuffle=*/false);
    train_loader.SetViewNormalization(view_normalize);
    test_loader.SetViewNormalization(view_normalize);
    Trainer trainer(model.get(), train_options);
    trainer.Train(train_loader).status().AbortIfNotOk();
    return Evaluate(*model, test_loader);
  };
  EvalMetrics with_norm = run_view(true);
  EvalMetrics without_norm = run_view(false);
  TextTable view_table({"Preprocessing", "X-View Top-1"});
  view_table.AddRow({"view-normalized (default)", Pct(with_norm.top1)});
  view_table.AddRow({"raw camera coordinates", Pct(without_norm.top1)});
  view_table.Print(std::cout);
  Verdict("view normalization improves X-View",
          with_norm.top1 >= without_norm.top1);

  // --- (c) Augmentation ----------------------------------------------------
  std::printf("\n(c) training augmentation on vs off (DHGCN, X-Sub)...\n");
  auto run_augment = [&](bool augment) {
    LayerPtr model = CreateModel(ModelKind::kDhgcn, ntu.layout_type(),
                                 ntu.num_classes(), zoo);
    DataLoader train_loader(&ntu, xsub.train, scale.batch_size,
                            InputStream::kJoint, /*shuffle=*/true,
                            Rng(907));
    if (augment) {
      train_loader.SetAugmentation(
          AugmentationPipeline::Standard(scale.num_frames));
    }
    DataLoader test_loader(&ntu, xsub.test, scale.batch_size,
                           InputStream::kJoint, /*shuffle=*/false);
    Trainer trainer(model.get(), train_options);
    trainer.Train(train_loader).status().AbortIfNotOk();
    return Evaluate(*model, test_loader);
  };
  EvalMetrics augmented = run_augment(true);
  EvalMetrics plain = run_augment(false);
  TextTable augment_table({"Training data", "X-Sub Top-1"});
  augment_table.AddRow({"augmented", Pct(augmented.top1)});
  augment_table.AddRow({"plain", Pct(plain.top1)});
  augment_table.Print(std::cout);
  std::printf("  (informational: augmentation usually helps once models "
              "overfit;\n   at bench scale either outcome is plausible)\n");

  PrintFooter(timer);
  return 0;
}

}  // namespace
}  // namespace dhgcn::bench

int main() { return dhgcn::bench::Run(); }
