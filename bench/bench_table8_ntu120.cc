// Reproduces Tab. 8: comparison with the state of the art on NTU RGB+D
// 120 (X-Sub / X-Set). The NTU-120-like substrate adds subjects and eight
// capture setups; X-Set trains on even setup ids and tests on odd ones,
// as in the original protocol.

#include "bench/bench_common.h"

namespace dhgcn::bench {
namespace {

int Run() {
  WallTimer timer;
  BenchScale scale = GetBenchScale();
  PrintHeader("Table 8: state-of-the-art comparison, NTU-120-like",
              "Tab. 8 (NTU RGB+D 120)", scale);

  SkeletonDataset ntu120 = MakeNtu120Like(scale);
  DatasetSplit xsub = MakeSplit(ntu120, SplitProtocol::kCrossSubject);
  DatasetSplit xset = MakeSplit(ntu120, SplitProtocol::kCrossSetup);

  std::printf("Training 3 methods on 2 splits...\n\n");
  EvalMetrics stgcn_sub = RunStream(ModelKind::kStgcn, ntu120, xsub,
                                    InputStream::kJoint, scale, 801);
  EvalMetrics stgcn_set = RunStream(ModelKind::kStgcn, ntu120, xset,
                                    InputStream::kJoint, scale, 803);
  TwoStreamEval agcn_sub =
      RunTwoStream(ModelKind::kAgcn, ntu120, xsub, scale, 805);
  TwoStreamEval agcn_set =
      RunTwoStream(ModelKind::kAgcn, ntu120, xset, scale, 807);
  TwoStreamEval dhgcn_sub =
      RunTwoStream(ModelKind::kDhgcn, ntu120, xsub, scale, 809);
  TwoStreamEval dhgcn_set =
      RunTwoStream(ModelKind::kDhgcn, ntu120, xset, scale, 811);

  TextTable table({"Method", "X-Sub (paper/ours)", "X-Set (paper/ours)"});
  table.AddRow({"ST-LSTM [21]", "55.7 / (not reimplemented)",
                "57.9 / (not reimplemented)"});
  table.AddRow({"AS-GCN+DH-TCN [24]", "78.3 / (not reimplemented)",
                "79.8 / (not reimplemented)"});
  // ST-GCN has no published NTU-120 row in the paper's Tab. 8; shown here
  // as the structural baseline measured on the same substrate.
  table.AddRow({"ST-GCN [37] (extra)",
                StrCat("- / ", Pct(stgcn_sub.top1)),
                StrCat("- / ", Pct(stgcn_set.top1))});
  table.AddRow({"2s-AGCN [29]", StrCat("82.5 / ", Pct(agcn_sub.fused.top1)),
                StrCat("84.2 / ", Pct(agcn_set.fused.top1))});
  table.AddRow({"ST-TR [26]", "82.7 / (not reimplemented)",
                "84.7 / (not reimplemented)"});
  table.AddRow({"Shift-GCN [3]", "85.9 / (not reimplemented)",
                "87.6 / (not reimplemented)"});
  table.AddRow(
      {"DHGCN(Ours)", StrCat("86.0 / ", Pct(dhgcn_sub.fused.top1)),
       StrCat("87.9 / ", Pct(dhgcn_set.fused.top1))});
  table.Print(std::cout);

  std::printf("\nShape claims (paper ordering among reimplemented "
              "methods):\n");
  Verdict("DHGCN >= 2s-AGCN (X-Sub)",
          dhgcn_sub.fused.top1 >= agcn_sub.fused.top1 - 1e-9);
  Verdict("DHGCN >= 2s-AGCN (X-Set)",
          dhgcn_set.fused.top1 >= agcn_set.fused.top1 - 1e-9);
  Verdict("DHGCN >= ST-GCN (X-Sub)",
          dhgcn_sub.fused.top1 >= stgcn_sub.top1 - 1e-9);

  PrintFooter(timer);
  return 0;
}

}  // namespace
}  // namespace dhgcn::bench

int main() { return dhgcn::bench::Run(); }
