// Compiled execution-plan vs layer-by-layer inference benchmarks.
//
// Three paths over the same eval-mode model and input:
//   Layerwise — virtual Layer dispatch, workspace arena reset per step.
//   PlanUnfused — record-once replay: flat op list, pre-resolved slot
//     offsets, zero per-step dispatch/allocation. Bit-identical output.
//   PlanFused — the unfused plan plus Conv→BN folding and elementwise
//     fusion (kBnAddRelu / kAddRelu): fewer ops, fewer memory sweeps.
//     Output is rtol-equivalent (float re-association).
//
// The Capture benchmark prices the record+resolve step itself, which a
// server amortizes over every request of one batch size.
//
//   ./bench_plan --benchmark_filter=Inference

#include <utility>

#include "benchmark/benchmark.h"

#include "base/rng.h"
#include "core/dhgcn_model.h"
#include "nn/batchnorm.h"
#include "nn/relu.h"
#include "plan/fused_kernels.h"
#include "plan/plan_builder.h"
#include "plan/plan_runner.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"
#include "tensor/workspace.h"

namespace dhgcn {
namespace {

DhgcnConfig BenchConfig() {
  return DhgcnConfig::Small(SkeletonLayoutType::kKinetics18,
                            /*num_classes=*/8);
}

Tensor MakeBenchInput(uint64_t seed = 3) {
  Rng rng(seed);
  return Tensor::RandomNormal({4, 3, 16, 18}, rng);
}

void BM_InferenceLayerwise(benchmark::State& state) {
  DhgcnModel model(BenchConfig());
  model.SetTraining(false);
  Tensor x = MakeBenchInput();
  Workspace ws;
  for (auto _ : state) {
    ws.Reset();
    Tensor logits;
    model.ForwardInto(x, ws, &logits);
    benchmark::DoNotOptimize(logits);
  }
}
BENCHMARK(BM_InferenceLayerwise)->Unit(benchmark::kMillisecond);

void BM_InferencePlanUnfused(benchmark::State& state) {
  DhgcnModel model(BenchConfig());
  model.SetTraining(false);
  Tensor x = MakeBenchInput();
  PlanRunner runner(
      BuildInferencePlan(model, x.shape(), PlanMode::kUnfused).ValueOrDie());
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.Run(x));
  }
}
BENCHMARK(BM_InferencePlanUnfused)->Unit(benchmark::kMillisecond);

void BM_InferencePlanFused(benchmark::State& state) {
  DhgcnModel model(BenchConfig());
  model.SetTraining(false);
  Tensor x = MakeBenchInput();
  PlanRunner runner(
      BuildInferencePlan(model, x.shape(), PlanMode::kFused).ValueOrDie());
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.Run(x));
  }
}
BENCHMARK(BM_InferencePlanFused)->Unit(benchmark::kMillisecond);

// One-time cost of capture + fusion + offset resolution (no replay).
void BM_CaptureAndResolve(benchmark::State& state) {
  DhgcnModel model(BenchConfig());
  model.SetTraining(false);
  for (auto _ : state) {
    ExecutionPlan plan =
        BuildInferencePlan(model, {4, 3, 16, 18}, PlanMode::kFused)
            .ValueOrDie();
    benchmark::DoNotOptimize(plan.arena_bytes);
  }
}
BENCHMARK(BM_CaptureAndResolve)->Unit(benchmark::kMicrosecond);

// The residual BN tail in isolation: relu(bn(a) + r). End-to-end the
// model is GEMM-dominated, so fusing this tail moves the total only a
// few percent — these two benches price the tail itself, where the
// three-sweep → one-sweep reduction is the whole story.
void BM_ResidualTailUnfused(benchmark::State& state) {
  Rng rng(11);
  const Shape shape = {8, 64, 32, 25};
  Tensor a = Tensor::RandomNormal(shape, rng);
  Tensor r = Tensor::RandomNormal(shape, rng);
  Tensor tmp = Tensor::Zeros(shape);
  Tensor out = Tensor::Zeros(shape);
  BatchNorm2d bn(/*channels=*/64);
  bn.SetTraining(false);
  for (auto _ : state) {
    // Mirrors the unfused plan: kBatchNormEval, kAccumulate, kRelu.
    bn.EvalPlan(a, &tmp);
    AddInPlace(tmp, r);
    ReLU::EvalPlan(tmp, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ResidualTailUnfused)->Unit(benchmark::kMicrosecond);

void BM_ResidualTailFused(benchmark::State& state) {
  Rng rng(11);
  const Shape shape = {8, 64, 32, 25};
  Tensor a = Tensor::RandomNormal(shape, rng);
  Tensor r = Tensor::RandomNormal(shape, rng);
  Tensor out = Tensor::Zeros(shape);
  Tensor scale = Tensor::RandomUniform({64}, rng, 0.5f, 1.5f);
  Tensor shift = Tensor::RandomNormal({64}, rng);
  for (auto _ : state) {
    BnAddReluKernel(scale, shift, a, r, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ResidualTailFused)->Unit(benchmark::kMicrosecond);

// Batch-1 latency, the serving-relevant shape.
void BM_InferenceBatch1Layerwise(benchmark::State& state) {
  DhgcnModel model(BenchConfig());
  model.SetTraining(false);
  Rng rng(7);
  Tensor one = Tensor::RandomNormal({1, 3, 16, 18}, rng);
  Workspace ws;
  for (auto _ : state) {
    ws.Reset();
    Tensor logits;
    model.ForwardInto(one, ws, &logits);
    benchmark::DoNotOptimize(logits);
  }
}
BENCHMARK(BM_InferenceBatch1Layerwise)->Unit(benchmark::kMillisecond);

void BM_InferenceBatch1PlanFused(benchmark::State& state) {
  DhgcnModel model(BenchConfig());
  model.SetTraining(false);
  Rng rng(7);
  Tensor one = Tensor::RandomNormal({1, 3, 16, 18}, rng);
  PlanRunner runner(
      BuildInferencePlan(model, one.shape(), PlanMode::kFused).ValueOrDie());
  for (auto _ : state) {
    benchmark::DoNotOptimize(runner.Run(one));
  }
}
BENCHMARK(BM_InferenceBatch1PlanFused)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dhgcn

BENCHMARK_MAIN();
