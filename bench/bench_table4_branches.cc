// Reproduces Tab. 4: spatial-branch ablation of the DHST block — removing
// the static hypergraph, the dynamic joint weight, the dynamic topology,
// or both dynamic branches, on NTU-60-like X-Sub / X-View. Paper: every
// removal hurts; removing both dynamic branches hurts most.

#include "bench/bench_common.h"

#include "core/dhgcn_model.h"

namespace dhgcn::bench {
namespace {

struct Tab4Row {
  std::string method;
  bool enable_static, enable_joint, enable_topology;
  std::string xsub_paper, xview_paper;
  double xsub = 0, xview = 0;
};

int Run() {
  WallTimer timer;
  BenchScale scale = GetBenchScale();
  PrintHeader("Table 4: DHST spatial-branch ablation",
              "Tab. 4 (no/static, no/joint, no/topology, no/dynamic)",
              scale);

  SkeletonDataset ntu = MakeNtuLike(scale);
  DatasetSplit xsub = MakeSplit(ntu, SplitProtocol::kCrossSubject);
  DatasetSplit xview = MakeSplit(ntu, SplitProtocol::kCrossView);

  std::vector<Tab4Row> rows = {
      {"DHGCN(no/static)", false, true, true, "90.3", "95.6"},
      {"DHGCN(no/joint)", true, false, true, "90.0", "95.1"},
      {"DHGCN(no/topology)", true, true, false, "89.9", "94.7"},
      {"DHGCN(no/dynamic)", true, false, false, "88.7", "94.3"},
      {"DHGCN", true, true, true, "90.7", "96.0"},
  };

  std::printf("Training %zu DHGCN variants x 2 splits (joint stream)...\n\n",
              rows.size());
  ModelZooOptions zoo = BenchZoo(401);
  for (Tab4Row& row : rows) {
    auto run = [&](const DatasetSplit& split, uint64_t seed) {
      DhgcnConfig config =
          DhgcnConfig::Small(ntu.layout_type(), ntu.num_classes());
      config.blocks.clear();
      for (size_t i = 0; i < zoo.scale.channels.size(); ++i) {
        config.blocks.push_back(
            {zoo.scale.channels[i], zoo.scale.strides[i], 1});
      }
      config.dropout = zoo.scale.dropout;
      config.topology.kn = zoo.kn;
      config.topology.km = zoo.km;
      config.seed = zoo.seed;
      config.enable_static = row.enable_static;
      config.enable_joint_weight = row.enable_joint;
      config.enable_topology = row.enable_topology;
      auto model = DhgcnModel::Make(config).MoveValue();
      return TrainAndEvaluateStream(*model, ntu, split, InputStream::kJoint,
                                    BenchTrainOptions(scale),
                                    scale.batch_size, seed);
    };
    row.xsub = run(xsub, 403).top1;
    row.xview = run(xview, 407).top1;
    std::printf("  %-20s X-Sub %.3f  X-View %.3f\n", row.method.c_str(),
                row.xsub, row.xview);
  }

  TextTable table(
      {"Method", "X-Sub (paper/ours)", "X-View (paper/ours)"});
  for (const Tab4Row& row : rows) {
    table.AddRow({row.method, StrCat(row.xsub_paper, " / ", Pct(row.xsub)),
                  StrCat(row.xview_paper, " / ", Pct(row.xview))});
  }
  std::printf("\n");
  table.Print(std::cout);

  const Tab4Row& full = rows.back();
  const Tab4Row& no_dynamic = rows[3];
  std::printf("\nShape claims (paper: every branch contributes; dynamic "
              "branches matter most):\n");
  int beaten = 0;
  for (size_t i = 0; i + 1 < rows.size(); ++i) {
    if (full.xsub + full.xview >= rows[i].xsub + rows[i].xview) ++beaten;
  }
  Verdict(StrCat("full DHGCN beats or ties the ablations on summed "
                 "accuracy (", beaten, "/", rows.size() - 1, ")"),
          beaten * 2 >= static_cast<int>(rows.size() - 1));
  Verdict("removing both dynamic branches is the worst ablation",
          no_dynamic.xsub + no_dynamic.xview <=
              std::min({rows[0].xsub + rows[0].xview,
                        rows[1].xsub + rows[1].xview,
                        rows[2].xsub + rows[2].xview}) + 1e-9 ||
              no_dynamic.xsub + no_dynamic.xview <
                  full.xsub + full.xview);

  PrintFooter(timer);
  return 0;
}

}  // namespace
}  // namespace dhgcn::bench

int main() { return dhgcn::bench::Run(); }
