// Reproduces Tab. 6: comparison with the state of the art on
// Kinetics-Skeleton. The methods implemented in this repository (TCN,
// ST-GCN, 2s-AGCN, DHGCN) are retrained on the synthetic Kinetics-like
// substrate; the remaining published rows are printed as reference-only.
// TCN and ST-GCN were published as single-stream (joint) models; 2s-AGCN
// and DHGCN use the two-stream fusion, as in their papers.

#include "bench/bench_common.h"

namespace dhgcn::bench {
namespace {

int Run() {
  WallTimer timer;
  BenchScale scale = GetBenchScale();
  PrintHeader("Table 6: state-of-the-art comparison, Kinetics-like",
              "Tab. 6 (Kinetics-Skeleton)", scale);

  SkeletonDataset kinetics = MakeKineticsLike(scale);
  DatasetSplit split = MakeSplit(kinetics, SplitProtocol::kRandom, 2);

  std::printf("Training TCN, ST-GCN (joint) and 2s-AGCN, DHGCN "
              "(two-stream)...\n\n");
  EvalMetrics tcn = RunStream(ModelKind::kTcn, kinetics, split,
                              InputStream::kJoint, scale, 601);
  EvalMetrics stgcn = RunStream(ModelKind::kStgcn, kinetics, split,
                                InputStream::kJoint, scale, 603);
  TwoStreamEval agcn = RunTwoStream(ModelKind::kAgcn, kinetics, split,
                                    scale, 605);
  TwoStreamEval dhgcn = RunTwoStream(ModelKind::kDhgcn, kinetics, split,
                                     scale, 607);

  TextTable table({"Method", "Top1 (paper/ours)", "Top5 (paper/ours)"});
  table.AddRow({"TCN [13]", StrCat("20.3 / ", Pct(tcn.top1)),
                StrCat("40.0 / ", Pct(tcn.top5))});
  table.AddRow({"ST-GCN [37]", StrCat("30.7 / ", Pct(stgcn.top1)),
                StrCat("52.8 / ", Pct(stgcn.top5))});
  table.AddRow({"ST-GR [16]", "33.6 / (not reimplemented)",
                "56.1 / (not reimplemented)"});
  table.AddRow({"2s-AGCN [29]", StrCat("36.1 / ", Pct(agcn.fused.top1)),
                StrCat("58.7 / ", Pct(agcn.fused.top5))});
  table.AddRow({"DGNN [28]", "36.9 / (not reimplemented)",
                "59.6 / (not reimplemented)"});
  table.AddRow({"ST-TR [26]", "37.4 / (not reimplemented)",
                "59.8 / (not reimplemented)"});
  table.AddRow({"Advanced CA-GCN [39]", "34.1 / (not reimplemented)",
                "56.6 / (not reimplemented)"});
  table.AddRow({"DHGCN(Ours)", StrCat("37.7 / ", Pct(dhgcn.fused.top1)),
                StrCat("60.6 / ", Pct(dhgcn.fused.top5))});
  table.Print(std::cout);

  std::printf("\nShape claims (paper ordering among reimplemented "
              "methods):\n");
  Verdict("DHGCN >= 2s-AGCN (Top-1)",
          dhgcn.fused.top1 >= agcn.fused.top1 - 1e-9);
  Verdict("DHGCN >= ST-GCN (Top-1)", dhgcn.fused.top1 >= stgcn.top1 - 1e-9);
  Verdict("2s-AGCN >= ST-GCN (Top-1)",
          agcn.fused.top1 >= stgcn.top1 - 1e-9);
  Verdict("graph-structured models >= TCN on defective skeletons (Top-1)",
          std::max(dhgcn.fused.top1, agcn.fused.top1) >= tcn.top1 - 1e-9);

  PrintFooter(timer);
  return 0;
}

}  // namespace
}  // namespace dhgcn::bench

int main() { return dhgcn::bench::Run(); }
