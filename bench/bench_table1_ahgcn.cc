// Reproduces Tab. 1: "The effectiveness of hypergraph on existing
// GCN-based method" — 2s-AGCN vs 2s-AHGCN (the same adaptive backbone
// with the skeleton-graph operator replaced by the static-hypergraph
// operator), on Kinetics-like (Top-1/Top-5) and NTU-60-like
// (X-Sub / X-View) data, per stream and fused.

#include "bench/bench_common.h"

namespace dhgcn::bench {
namespace {

struct Tab1Row {
  std::string method;
  std::string kin_top1_paper, kin_top5_paper, xsub_paper, xview_paper;
  double kin_top1 = 0, kin_top5 = 0, xsub = 0, xview = 0;
};

int Run() {
  WallTimer timer;
  BenchScale scale = GetBenchScale();
  PrintHeader("Table 1: hypergraph vs graph on the 2s-AGCN backbone",
              "Tab. 1 (2s-AGCN vs 2s-AHGCN)", scale);

  SkeletonDataset kinetics = MakeKineticsLike(scale);
  SkeletonDataset ntu = MakeNtuLike(scale);
  DatasetSplit kin_split = MakeSplit(kinetics, SplitProtocol::kRandom, 2);
  DatasetSplit xsub = MakeSplit(ntu, SplitProtocol::kCrossSubject);
  DatasetSplit xview = MakeSplit(ntu, SplitProtocol::kCrossView);

  std::printf("Training 2s-AGCN (joint+bone) and 2s-AHGCN (joint+bone) on "
              "3 splits each...\n\n");
  TwoStreamEval agcn_kin = RunTwoStream(ModelKind::kAgcn, kinetics,
                                        kin_split, scale, 101);
  TwoStreamEval ahgcn_kin = RunTwoStream(ModelKind::kAhgcn, kinetics,
                                         kin_split, scale, 101);
  TwoStreamEval agcn_xsub =
      RunTwoStream(ModelKind::kAgcn, ntu, xsub, scale, 103);
  TwoStreamEval ahgcn_xsub =
      RunTwoStream(ModelKind::kAhgcn, ntu, xsub, scale, 103);
  TwoStreamEval agcn_xview =
      RunTwoStream(ModelKind::kAgcn, ntu, xview, scale, 105);
  TwoStreamEval ahgcn_xview =
      RunTwoStream(ModelKind::kAhgcn, ntu, xview, scale, 105);

  std::vector<Tab1Row> rows = {
      {"2s-AGCN(Joint)", "35.1", "57.1", "-", "93.7", agcn_kin.joint.top1,
       agcn_kin.joint.top5, agcn_xsub.joint.top1, agcn_xview.joint.top1},
      {"2s-AHGCN(Joint)", "35.5", "57.6", "87.5", "94.2",
       ahgcn_kin.joint.top1, ahgcn_kin.joint.top5, ahgcn_xsub.joint.top1,
       ahgcn_xview.joint.top1},
      {"2s-AGCN(Bone)", "33.3", "55.7", "-", "93.2", agcn_kin.bone.top1,
       agcn_kin.bone.top5, agcn_xsub.bone.top1, agcn_xview.bone.top1},
      {"2s-AHGCN(Bone)", "34.5", "56.8", "87.6", "93.6",
       ahgcn_kin.bone.top1, ahgcn_kin.bone.top5, ahgcn_xsub.bone.top1,
       ahgcn_xview.bone.top1},
      {"2s-AGCN", "36.1", "58.7", "88.5", "95.1", agcn_kin.fused.top1,
       agcn_kin.fused.top5, agcn_xsub.fused.top1, agcn_xview.fused.top1},
      {"2s-AHGCN", "37.0", "59.8", "89.4", "95.4", ahgcn_kin.fused.top1,
       ahgcn_kin.fused.top5, ahgcn_xsub.fused.top1,
       ahgcn_xview.fused.top1},
  };

  TextTable table({"Method", "Kin Top1 (paper/ours)",
                   "Kin Top5 (paper/ours)", "X-Sub (paper/ours)",
                   "X-View (paper/ours)"});
  for (const Tab1Row& row : rows) {
    table.AddRow({row.method,
                  StrCat(row.kin_top1_paper, " / ", Pct(row.kin_top1)),
                  StrCat(row.kin_top5_paper, " / ", Pct(row.kin_top5)),
                  StrCat(row.xsub_paper, " / ", Pct(row.xsub)),
                  StrCat(row.xview_paper, " / ", Pct(row.xview))});
  }
  table.Print(std::cout);

  std::printf("\nShape claims (paper: hypergraph helps the same "
              "backbone):\n");
  Verdict("2s-AHGCN fused >= 2s-AGCN fused on Kinetics-like (Top-1)",
          ahgcn_kin.fused.top1 >= agcn_kin.fused.top1);
  Verdict("2s-AHGCN fused >= 2s-AGCN fused on NTU-like X-Sub",
          ahgcn_xsub.fused.top1 >= agcn_xsub.fused.top1);
  Verdict("2s-AHGCN fused >= 2s-AGCN fused on NTU-like X-View",
          ahgcn_xview.fused.top1 >= agcn_xview.fused.top1);
  Verdict("fusion >= best single stream (AHGCN, X-Sub)",
          ahgcn_xsub.fused.top1 >=
              std::max(ahgcn_xsub.joint.top1, ahgcn_xsub.bone.top1) - 1e-9);

  PrintFooter(timer);
  return 0;
}

}  // namespace
}  // namespace dhgcn::bench

int main() { return dhgcn::bench::Run(); }
