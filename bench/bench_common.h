#ifndef DHGCN_BENCH_BENCH_COMMON_H_
#define DHGCN_BENCH_BENCH_COMMON_H_

// Shared helpers for the table-reproduction benchmark binaries.
//
// Every bench_tableN binary regenerates one table of the paper's
// evaluation section on the synthetic substrate (see DESIGN.md §3 for the
// substitution rationale). Output format: the paper's reported numbers
// side by side with the numbers measured here, followed by verdicts on
// the *shape* claims (who wins). Absolute values are not expected to
// match — the substrate and scale differ — but orderings should.
//
// Scale is controlled by DHGCN_BENCH_SCALE (smoke | default | full).

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "base/string_util.h"
#include "base/timer.h"
#include "data/dataset.h"
#include "models/model_zoo.h"
#include "train/evaluator.h"
#include "train/experiment.h"
#include "train/table.h"
#include "train/trainer.h"

namespace dhgcn::bench {

/// Model capacity used by all table benches: three spatial-temporal
/// blocks, capacity-matched across architectures.
inline ModelZooOptions BenchZoo(uint64_t seed = 17) {
  ModelZooOptions options;
  options.scale.channels = {16, 32, 64};
  options.scale.strides = {1, 2, 2};
  options.scale.dropout = 0.0f;
  options.kn = 3;
  options.km = 4;
  options.seed = seed;
  return options;
}

/// NTU-RGB+D-60-like synthetic dataset at the current bench scale.
inline SkeletonDataset MakeNtuLike(const BenchScale& scale,
                                   uint64_t seed = 41) {
  SyntheticDataConfig config = NtuLikeConfig(
      scale.num_classes, scale.samples_per_class, scale.num_frames, seed);
  return SkeletonDataset::Generate(config).MoveValue();
}

/// NTU-RGB+D-120-like: more subjects and eight setups (X-Set protocol).
inline SkeletonDataset MakeNtu120Like(const BenchScale& scale,
                                      uint64_t seed = 43) {
  SyntheticDataConfig config = NtuLikeConfig(
      scale.num_classes, scale.samples_per_class, scale.num_frames, seed);
  config.num_subjects = 12;
  config.num_setups = 8;
  return SkeletonDataset::Generate(config).MoveValue();
}

/// Kinetics-Skeleton-like: 18-joint 2-D data with OpenPose-style defects.
/// Uses twice the class count of the NTU-like runs so the Top-5 metric is
/// non-trivial (the real dataset has 400 classes).
inline SkeletonDataset MakeKineticsLike(const BenchScale& scale,
                                        uint64_t seed = 47) {
  SyntheticDataConfig config = KineticsLikeConfig(
      scale.num_classes * 2, scale.samples_per_class, scale.num_frames,
      seed);
  return SkeletonDataset::Generate(config).MoveValue();
}

/// Number of repeated runs (different seeds) averaged per table cell.
/// Controlled by DHGCN_BENCH_REPEATS (default 1). With tens of test
/// samples per split, a single run carries several points of noise; the
/// paper's sub-point deltas only become resolvable with averaging.
inline int64_t BenchRepeats() {
  const char* env = std::getenv("DHGCN_BENCH_REPEATS");
  if (env == nullptr) return 1;
  int64_t repeats = std::atoll(env);
  return repeats >= 1 ? repeats : 1;
}

inline void AccumulateMetrics(EvalMetrics& total, const EvalMetrics& run) {
  total.top1 += run.top1;
  total.top5 += run.top5;
  total.loss += run.loss;
  total.count = run.count;
}

inline void ScaleMetrics(EvalMetrics& total, int64_t repeats) {
  total.top1 /= static_cast<double>(repeats);
  total.top5 /= static_cast<double>(repeats);
  total.loss /= static_cast<double>(repeats);
}

/// Trains a fresh model of `kind` on one stream and evaluates it,
/// averaged over BenchRepeats() seeds.
inline EvalMetrics RunStream(ModelKind kind, const SkeletonDataset& dataset,
                             const DatasetSplit& split, InputStream stream,
                             const BenchScale& scale, uint64_t seed) {
  int64_t repeats = BenchRepeats();
  EvalMetrics total;
  for (int64_t r = 0; r < repeats; ++r) {
    uint64_t run_seed = seed + static_cast<uint64_t>(r) * 1000;
    ModelZooOptions zoo = BenchZoo(run_seed);
    LayerPtr model = CreateModel(kind, dataset.layout_type(),
                                 dataset.num_classes(), zoo);
    AccumulateMetrics(total, TrainAndEvaluateStream(
                                 *model, dataset, split, stream,
                                 BenchTrainOptions(scale),
                                 scale.batch_size, run_seed));
  }
  ScaleMetrics(total, repeats);
  return total;
}

/// Full two-stream run (joint + bone + fusion) for a model kind,
/// averaged over BenchRepeats() seeds.
inline TwoStreamEval RunTwoStream(ModelKind kind,
                                  const SkeletonDataset& dataset,
                                  const DatasetSplit& split,
                                  const BenchScale& scale, uint64_t seed) {
  int64_t repeats = BenchRepeats();
  TwoStreamEval total;
  for (int64_t r = 0; r < repeats; ++r) {
    uint64_t run_seed = seed + static_cast<uint64_t>(r) * 1000;
    ModelZooOptions zoo = BenchZoo(run_seed);
    TwoStreamEval run = RunTwoStreamExperiment(
        [&] {
          return CreateModel(kind, dataset.layout_type(),
                             dataset.num_classes(), zoo);
        },
        dataset, split, BenchTrainOptions(scale), scale.batch_size,
        run_seed);
    AccumulateMetrics(total.joint, run.joint);
    AccumulateMetrics(total.bone, run.bone);
    AccumulateMetrics(total.fused, run.fused);
  }
  ScaleMetrics(total.joint, repeats);
  ScaleMetrics(total.bone, repeats);
  ScaleMetrics(total.fused, repeats);
  return total;
}

/// "87.5" for 0.875; "-" for the paper's missing entries.
inline std::string Pct(double fraction) { return FormatPercent(fraction); }

/// Prints the standard bench header.
inline void PrintHeader(const std::string& title,
                        const std::string& paper_ref,
                        const BenchScale& scale) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("Reproduces %s on the synthetic substrate (DESIGN.md §3).\n",
              paper_ref.c_str());
  std::printf(
      "Scale '%s': %lld classes x %lld samples, T=%lld, %lld epochs, "
      "%lld seed(s) per cell.\n"
      "Paper numbers are the published ones; measured numbers come from "
      "this run.\nAbsolute values differ by design; orderings (shape) are "
      "what should match.\nNote: with tens of test samples per split, a "
      "single seed carries several\npercentage points of noise — "
      "sub-point paper deltas need DHGCN_BENCH_REPEATS>1.\n\n",
      scale.name.c_str(), static_cast<long long>(scale.num_classes),
      static_cast<long long>(scale.samples_per_class),
      static_cast<long long>(scale.num_frames),
      static_cast<long long>(scale.epochs),
      static_cast<long long>(BenchRepeats()));
}

/// Prints a PASS/WARN verdict for a shape claim.
inline bool Verdict(const std::string& claim, bool holds) {
  std::printf("  [%s] %s\n", holds ? "PASS" : "WARN", claim.c_str());
  return holds;
}

/// Footer with wall-clock.
inline void PrintFooter(const WallTimer& timer) {
  std::printf("\nTotal wall time: %.1fs\n", timer.ElapsedSeconds());
}

}  // namespace dhgcn::bench

#endif  // DHGCN_BENCH_BENCH_COMMON_H_
