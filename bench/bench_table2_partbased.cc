// Reproduces Tab. 2: "Ablation study of different numbers of subgraphs"
// — PB-GCN (per-part subgraph convolutions + sum aggregation) vs PB-HGCN
// (parts become hyperedges of one hypergraph; no aggregation function),
// with 2 / 4 / 6 body parts, on NTU-60-like X-Sub / X-View.
//
// PB-HGCN's layers are widened to match PB-GCN's parameter budget (it
// has no per-part convolutions), so the comparison isolates topology —
// see MakePbHgcnModel.

#include "bench/bench_common.h"

namespace dhgcn::bench {
namespace {

struct Tab2Row {
  std::string method;
  ModelKind kind;
  std::string xsub_paper, xview_paper;
  double xsub = 0, xview = 0;
};

int Run() {
  WallTimer timer;
  BenchScale scale = GetBenchScale();
  PrintHeader("Table 2: PB-GCN vs PB-HGCN with 2/4/6 parts",
              "Tab. 2 (part-based subgraphs vs part hyperedges)", scale);

  SkeletonDataset ntu = MakeNtuLike(scale);
  DatasetSplit xsub = MakeSplit(ntu, SplitProtocol::kCrossSubject);
  DatasetSplit xview = MakeSplit(ntu, SplitProtocol::kCrossView);

  std::vector<Tab2Row> rows = {
      {"PB-GCN(two)", ModelKind::kPbgcn2, "80.2", "88.4"},
      {"PB-HGCN(two)", ModelKind::kPbhgcn2, "81.6", "90.2"},
      {"PB-GCN(four)", ModelKind::kPbgcn4, "82.8", "90.3"},
      {"PB-HGCN(four)", ModelKind::kPbhgcn4, "84.9", "91.7"},
      {"PB-GCN(six)", ModelKind::kPbgcn6, "81.4", "89.1"},
      {"PB-HGCN(six)", ModelKind::kPbhgcn6, "82.5", "90.8"},
  };

  std::printf("Training %zu models on 2 splits each (joint stream)...\n\n",
              rows.size());
  for (Tab2Row& row : rows) {
    row.xsub = RunStream(row.kind, ntu, xsub, InputStream::kJoint, scale,
                         201)
                   .top1;
    row.xview = RunStream(row.kind, ntu, xview, InputStream::kJoint, scale,
                          203)
                    .top1;
    std::printf("  %-14s X-Sub %.3f  X-View %.3f\n", row.method.c_str(),
                row.xsub, row.xview);
  }

  TextTable table(
      {"Method", "X-Sub (paper/ours)", "X-View (paper/ours)"});
  for (const Tab2Row& row : rows) {
    table.AddRow({row.method, StrCat(row.xsub_paper, " / ", Pct(row.xsub)),
                  StrCat(row.xview_paper, " / ", Pct(row.xview))});
  }
  std::printf("\n");
  table.Print(std::cout);

  std::printf("\nShape claims (paper: the hypergraph variant wins at every "
              "part count):\n");
  for (size_t i = 0; i + 1 < rows.size(); i += 2) {
    Verdict(StrCat(rows[i + 1].method, " >= ", rows[i].method, " (X-Sub)"),
            rows[i + 1].xsub >= rows[i].xsub);
    Verdict(StrCat(rows[i + 1].method, " >= ", rows[i].method, " (X-View)"),
            rows[i + 1].xview >= rows[i].xview);
  }

  PrintFooter(timer);
  return 0;
}

}  // namespace
}  // namespace dhgcn::bench

int main() { return dhgcn::bench::Run(); }
