// Reproduces Tab. 7: comparison with the state of the art on NTU RGB+D
// 60 (X-Sub / X-View). Reimplemented methods are retrained on the
// synthetic NTU-60-like substrate; other published rows are reference
// only. TCN and ST-GCN run single-stream, 2s-AGCN and DHGCN two-stream.

#include "bench/bench_common.h"

namespace dhgcn::bench {
namespace {

int Run() {
  WallTimer timer;
  BenchScale scale = GetBenchScale();
  PrintHeader("Table 7: state-of-the-art comparison, NTU-60-like",
              "Tab. 7 (NTU RGB+D 60)", scale);

  SkeletonDataset ntu = MakeNtuLike(scale);
  DatasetSplit xsub = MakeSplit(ntu, SplitProtocol::kCrossSubject);
  DatasetSplit xview = MakeSplit(ntu, SplitProtocol::kCrossView);

  std::printf("Training 4 methods on 2 splits...\n\n");
  EvalMetrics tcn_sub = RunStream(ModelKind::kTcn, ntu, xsub,
                                  InputStream::kJoint, scale, 701);
  EvalMetrics tcn_view = RunStream(ModelKind::kTcn, ntu, xview,
                                   InputStream::kJoint, scale, 703);
  EvalMetrics stgcn_sub = RunStream(ModelKind::kStgcn, ntu, xsub,
                                    InputStream::kJoint, scale, 705);
  EvalMetrics stgcn_view = RunStream(ModelKind::kStgcn, ntu, xview,
                                     InputStream::kJoint, scale, 707);
  TwoStreamEval agcn_sub =
      RunTwoStream(ModelKind::kAgcn, ntu, xsub, scale, 709);
  TwoStreamEval agcn_view =
      RunTwoStream(ModelKind::kAgcn, ntu, xview, scale, 711);
  TwoStreamEval dhgcn_sub =
      RunTwoStream(ModelKind::kDhgcn, ntu, xsub, scale, 713);
  TwoStreamEval dhgcn_view =
      RunTwoStream(ModelKind::kDhgcn, ntu, xview, scale, 715);

  TextTable table({"Method", "X-Sub (paper/ours)", "X-View (paper/ours)"});
  auto reference = [&table](const std::string& method,
                            const std::string& xsub_paper,
                            const std::string& xview_paper) {
    table.AddRow({method, StrCat(xsub_paper, " / (not reimplemented)"),
                  StrCat(xview_paper, " / (not reimplemented)")});
  };
  reference("Lie Group [34]", "50.1", "82.8");
  reference("ST-LSTM [21]", "69.2", "77.7");
  reference("ARRN-LSTM [40]", "80.7", "88.8");
  reference("Ind-RNN [18]", "81.8", "88.0");
  table.AddRow({"TCN [13]", StrCat("74.3 / ", Pct(tcn_sub.top1)),
                StrCat("83.1 / ", Pct(tcn_view.top1))});
  reference("Clips+CNN+MTLN [12]", "79.6", "84.8");
  table.AddRow({"ST-GCN [37]", StrCat("81.5 / ", Pct(stgcn_sub.top1)),
                StrCat("88.3 / ", Pct(stgcn_view.top1))});
  reference("Advanced CA-GCN [39]", "83.5", "91.4");
  reference("ST-GR [16]", "86.9", "92.3");
  reference("(P+C)net,Traversal [1]", "86.1", "93.5");
  table.AddRow({"2s-AGCN [29]", StrCat("88.5 / ", Pct(agcn_sub.fused.top1)),
                StrCat("95.1 / ", Pct(agcn_view.fused.top1))});
  reference("AGC-LSTM [30]", "89.2", "95.0");
  reference("DGNN [28]", "89.9", "96.1");
  reference("ST-TR [26]", "89.3", "96.1");
  reference("C-MANs [17]", "83.7", "93.8");
  reference("Shift-GCN [3]", "90.7", "96.5");
  table.AddRow(
      {"DHGCN(Ours)", StrCat("90.7 / ", Pct(dhgcn_sub.fused.top1)),
       StrCat("96.0 / ", Pct(dhgcn_view.fused.top1))});
  table.Print(std::cout);

  std::printf("\nShape claims (paper ordering among reimplemented "
              "methods):\n");
  Verdict("DHGCN >= 2s-AGCN (X-Sub)",
          dhgcn_sub.fused.top1 >= agcn_sub.fused.top1 - 1e-9);
  Verdict("DHGCN >= ST-GCN (X-Sub)",
          dhgcn_sub.fused.top1 >= stgcn_sub.top1 - 1e-9);
  Verdict("DHGCN >= 2s-AGCN (X-View)",
          dhgcn_view.fused.top1 >= agcn_view.fused.top1 - 1e-9);
  Verdict("2s-AGCN >= ST-GCN (X-Sub)",
          agcn_sub.fused.top1 >= stgcn_sub.top1 - 1e-9);

  PrintFooter(timer);
  return 0;
}

}  // namespace
}  // namespace dhgcn::bench

int main() { return dhgcn::bench::Run(); }
