// Kernel micro-benchmarks (google-benchmark): the cost of every building
// block the DHGCN pipeline uses, plus the design-choice ablations called
// out in DESIGN.md — the overhead of hypergraph aggregation vs a dense
// matmul, of the dynamic-operator construction (K-NN, K-means, moving
// distance), and of a full DHST block against its three-branch parts.

#include <benchmark/benchmark.h>

#include <cstring>

#include "base/rng.h"
#include "base/thread_pool.h"
#include "core/dhgcn_model.h"
#include "core/dhst_block.h"
#include "core/dynamic_joint_weight.h"
#include "core/dynamic_topology.h"
#include "core/static_hypergraph.h"
#include "data/skeleton.h"
#include "data/synthetic_generator.h"
#include "data/transforms.h"
#include "hypergraph/hypergraph_conv.h"
#include "hypergraph/kmeans.h"
#include "hypergraph/graph.h"
#include "hypergraph/knn.h"
#include "nn/conv2d.h"
#include "tensor/linalg.h"
#include "tensor/sparse.h"
#include "tensor/tensor_ops.h"

namespace dhgcn {
namespace {

// --- Tensor kernels ---------------------------------------------------------

void BM_MatMul(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::RandomNormal({n, n}, rng);
  Tensor b = Tensor::RandomNormal({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(25)->Arg(64)->Arg(128);

// --- Blocked-GEMM ablation (recorded in BENCH_gemm.json) --------------------
//
// BM_GemmNaive runs the retained reference row kernel (the pre-blocking
// implementation, still used for GemmHint::kSparse); BM_GemmBlocked runs
// the packed cache-blocked micro-kernel through MatMul, pack time
// included. Both single-threaded so the ratio isolates the kernel.

void BM_GemmNaive(benchmark::State& state) {
  ThreadPool::Get().SetThreads(1);
  int64_t n = state.range(0);
  Rng rng(22);
  Tensor a = Tensor::RandomNormal({n, n}, rng);
  Tensor b = Tensor::RandomNormal({n, n}, rng);
  Tensor c = Tensor::Zeros({n, n});
  for (auto _ : state) {
    std::memset(c.data(), 0, static_cast<size_t>(c.numel()) * sizeof(float));
    detail::GemmReferenceAccumulate(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmBlocked(benchmark::State& state) {
  ThreadPool::Get().SetThreads(1);
  int64_t n = state.range(0);
  Rng rng(23);
  Tensor a = Tensor::RandomNormal({n, n}, rng);
  Tensor b = Tensor::RandomNormal({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmBlocked)->Arg(64)->Arg(128)->Arg(256);

// Conv2d general-path lowering ablation: the original direct loop nest vs
// the im2col + blocked-GEMM lowering, on the DHGCN temporal-conv shape
// (9x1 kernel over (T, V) planes).

Conv2dOptions TemporalConvOptions() {
  Conv2dOptions options;
  options.kernel_h = 9;
  options.pad_h = 4;
  return options;
}

void BM_Conv2dDirect(benchmark::State& state) {
  Conv2d::SetUseIm2col(false);
  Rng rng(24);
  Conv2d conv(32, 32, TemporalConvOptions(), rng);
  Tensor x = Tensor::RandomNormal({4, 32, 32, 25}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x));
  }
  Conv2d::SetUseIm2col(true);
}
BENCHMARK(BM_Conv2dDirect);

void BM_Conv2dIm2col(benchmark::State& state) {
  Conv2d::SetUseIm2col(true);
  Rng rng(24);  // same seed: identical layer and input as BM_Conv2dDirect
  Conv2d conv(32, 32, TemporalConvOptions(), rng);
  Tensor x = Tensor::RandomNormal({4, 32, 32, 25}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x));
  }
}
BENCHMARK(BM_Conv2dIm2col);

void BM_Conv2dDirectBackward(benchmark::State& state) {
  Conv2d::SetUseIm2col(false);
  Rng rng(25);
  Conv2d conv(32, 32, TemporalConvOptions(), rng);
  Tensor x = Tensor::RandomNormal({4, 32, 32, 25}, rng);
  Tensor g = Tensor::RandomNormal(conv.Forward(x).shape(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Backward(g));
  }
  Conv2d::SetUseIm2col(true);
}
BENCHMARK(BM_Conv2dDirectBackward);

void BM_Conv2dIm2colBackward(benchmark::State& state) {
  Conv2d::SetUseIm2col(true);
  Rng rng(25);
  Conv2d conv(32, 32, TemporalConvOptions(), rng);
  Tensor x = Tensor::RandomNormal({4, 32, 32, 25}, rng);
  Tensor g = Tensor::RandomNormal(conv.Forward(x).shape(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Backward(g));
  }
}
BENCHMARK(BM_Conv2dIm2colBackward);

void BM_Softmax(benchmark::State& state) {
  Rng rng(2);
  Tensor x = Tensor::RandomNormal({64, state.range(0)}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Softmax(x, 1));
  }
}
BENCHMARK(BM_Softmax)->Arg(60)->Arg(400);

void BM_Conv2dTemporal(benchmark::State& state) {
  Rng rng(3);
  Conv2dOptions options;
  options.kernel_h = 3;
  options.pad_h = 1;
  Conv2d conv(state.range(0), state.range(0), options, rng);
  Tensor x = Tensor::RandomNormal({4, state.range(0), 16, 25}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x));
  }
}
BENCHMARK(BM_Conv2dTemporal)->Arg(16)->Arg(64);

void BM_Conv2dBackward(benchmark::State& state) {
  Rng rng(4);
  Conv2dOptions options;
  options.kernel_h = 3;
  options.pad_h = 1;
  Conv2d conv(32, 32, options, rng);
  Tensor x = Tensor::RandomNormal({4, 32, 16, 25}, rng);
  Tensor y = conv.Forward(x);
  Tensor g = Tensor::RandomNormal(y.shape(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Backward(g));
  }
}
BENCHMARK(BM_Conv2dBackward);

// --- Graph / hypergraph operators --------------------------------------------

void BM_HypergraphOperatorBuild(benchmark::State& state) {
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kNtu25);
  Hypergraph h = StaticSkeletonHypergraph(layout);
  for (auto _ : state) {
    benchmark::DoNotOptimize(NormalizedHypergraphOperator(h));
  }
}
BENCHMARK(BM_HypergraphOperatorBuild);

// Ablation: applying a (V,V) structural operator over the vertex axis
// (the aggregation half of every graph/hypergraph conv) vs an equally
// sized dense matmul — shows the aggregation is matmul-bound.
void BM_VertexMixApply(benchmark::State& state) {
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kNtu25);
  Rng rng(5);
  VertexMix mix(NormalizedHypergraphOperator(
      StaticSkeletonHypergraph(layout)));
  Tensor x = Tensor::RandomNormal({4, 32, 16, 25}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mix.Forward(x));
  }
}
BENCHMARK(BM_VertexMixApply);

// Design-choice ablation: the same structural aggregation through the
// CSR kernel. The skeleton adjacency is ~12% dense, the static
// hypergraph operator ~35% — sparse wins on the former, roughly ties on
// the latter, which is why the library defaults to dense (V, V) mixing
// for hypergraph operators and offers SparseVertexMix for graph ones.
void BM_SparseVertexMixAdjacency(benchmark::State& state) {
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kNtu25);
  Rng rng(50);
  SparseVertexMix mix(SkeletonGraph(layout).NormalizedAdjacency(), 1e-8f);
  Tensor x = Tensor::RandomNormal({4, 32, 16, 25}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mix.Forward(x));
  }
}
BENCHMARK(BM_SparseVertexMixAdjacency);

void BM_DenseVertexMixAdjacency(benchmark::State& state) {
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kNtu25);
  Rng rng(51);
  VertexMix mix(SkeletonGraph(layout).NormalizedAdjacency());
  Tensor x = Tensor::RandomNormal({4, 32, 16, 25}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mix.Forward(x));
  }
}
BENCHMARK(BM_DenseVertexMixAdjacency);

void BM_SparseVertexMixHypergraph(benchmark::State& state) {
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kNtu25);
  Rng rng(52);
  SparseVertexMix mix(
      NormalizedHypergraphOperator(StaticSkeletonHypergraph(layout)),
      1e-8f);
  Tensor x = Tensor::RandomNormal({4, 32, 16, 25}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mix.Forward(x));
  }
}
BENCHMARK(BM_SparseVertexMixHypergraph);

void BM_SpMMVsGemm(benchmark::State& state) {
  // SpMM on a synthetic operator at the given percent density.
  Rng rng(53);
  int64_t n = 64;
  Tensor dense({n, n});
  float keep = static_cast<float>(state.range(0)) / 100.0f;
  for (int64_t i = 0; i < dense.numel(); ++i) {
    if (rng.Bernoulli(keep)) dense.flat(i) = rng.Normal();
  }
  CsrMatrix sparse = CsrMatrix::FromDense(dense);
  Tensor b = Tensor::RandomNormal({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SpMM(sparse, b));
  }
}
BENCHMARK(BM_SpMMVsGemm)->Arg(5)->Arg(25)->Arg(100);

void BM_DynamicVertexMixApply(benchmark::State& state) {
  Rng rng(6);
  DynamicVertexMix mix;
  mix.SetOperators(Tensor::RandomNormal({4, 16, 25, 25}, rng));
  Tensor x = Tensor::RandomNormal({4, 32, 16, 25}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mix.Forward(x));
  }
}
BENCHMARK(BM_DynamicVertexMixApply);

// --- Dynamic structure construction -------------------------------------------

void BM_PairwiseDistances(benchmark::State& state) {
  Rng rng(7);
  Tensor features = Tensor::RandomNormal({25, state.range(0)}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PairwiseDistances(features));
  }
}
BENCHMARK(BM_PairwiseDistances)->Arg(3)->Arg(64);

void BM_KnnHyperedges(benchmark::State& state) {
  Rng rng(8);
  Tensor features = Tensor::RandomNormal({25, 16}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KnnHyperedges(features, state.range(0)));
  }
}
BENCHMARK(BM_KnnHyperedges)->Arg(2)->Arg(3)->Arg(4);

void BM_KMeansHyperedges(benchmark::State& state) {
  Rng feature_rng(9);
  Tensor features = Tensor::RandomNormal({25, 16}, feature_rng);
  for (auto _ : state) {
    Rng rng(10);
    benchmark::DoNotOptimize(
        KMeansHyperedges(features, state.range(0), rng));
  }
}
BENCHMARK(BM_KMeansHyperedges)->Arg(3)->Arg(4)->Arg(5);

void BM_MovingDistances(benchmark::State& state) {
  Rng rng(11);
  Tensor coords = Tensor::RandomNormal({4, 3, 32, 25}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MovingDistances(coords));
  }
}
BENCHMARK(BM_MovingDistances);

void BM_DynamicJointWeightOperators(benchmark::State& state) {
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kNtu25);
  Hypergraph h = StaticSkeletonHypergraph(layout);
  Rng rng(12);
  Tensor coords = Tensor::RandomNormal({4, 3, state.range(0), 25}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DynamicJointWeightOperators(coords, h));
  }
}
BENCHMARK(BM_DynamicJointWeightOperators)->Arg(16)->Arg(32);

void BM_DynamicTopologyOperators(benchmark::State& state) {
  Rng rng(13);
  Tensor features = Tensor::RandomNormal({2, 16, state.range(0), 25}, rng);
  DynamicTopologyOptions options;
  options.kn = 3;
  options.km = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DynamicTopologyOperators(features, options));
  }
}
BENCHMARK(BM_DynamicTopologyOperators)->Arg(8)->Arg(16);

// --- Blocks and full model ------------------------------------------------------

void BM_DhstBlockForward(benchmark::State& state) {
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kNtu25);
  Hypergraph h = StaticSkeletonHypergraph(layout);
  Rng rng(14);
  DhstBlockOptions options;
  options.in_channels = 16;
  options.out_channels = 32;
  DhstBlock block(options, h, rng);
  Tensor x = Tensor::RandomNormal({2, 16, 16, 25}, rng);
  Tensor coords = Tensor::RandomNormal({2, 3, 16, 25}, rng);
  Tensor joint_ops = DynamicJointWeightOperators(coords, h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(block.Forward(x, joint_ops));
  }
}
BENCHMARK(BM_DhstBlockForward);

// Ablation: block cost without the dynamic-topology branch, isolating the
// per-frame K-NN/K-means construction overhead the paper's conclusion
// flags as future optimization work.
void BM_DhstBlockForwardNoTopology(benchmark::State& state) {
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kNtu25);
  Hypergraph h = StaticSkeletonHypergraph(layout);
  Rng rng(15);
  DhstBlockOptions options;
  options.in_channels = 16;
  options.out_channels = 32;
  options.enable_topology = false;
  DhstBlock block(options, h, rng);
  Tensor x = Tensor::RandomNormal({2, 16, 16, 25}, rng);
  Tensor coords = Tensor::RandomNormal({2, 3, 16, 25}, rng);
  Tensor joint_ops = DynamicJointWeightOperators(coords, h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(block.Forward(x, joint_ops));
  }
}
BENCHMARK(BM_DhstBlockForwardNoTopology);

void BM_DhgcnModelForward(benchmark::State& state) {
  DhgcnConfig config = DhgcnConfig::Small(SkeletonLayoutType::kNtu25, 10);
  DhgcnModel model(config);
  model.SetTraining(false);
  Rng rng(16);
  Tensor x = Tensor::RandomNormal({2, 3, 16, 25}, rng, 0.0f, 0.3f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Forward(x));
  }
}
BENCHMARK(BM_DhgcnModelForward);

void BM_DhgcnTrainStep(benchmark::State& state) {
  DhgcnConfig config = DhgcnConfig::Tiny(SkeletonLayoutType::kNtu25, 5);
  config.topology.kn = 2;
  config.topology.km = 2;
  DhgcnModel model(config);
  Rng rng(17);
  Tensor x = Tensor::RandomNormal({2, 3, 12, 25}, rng, 0.0f, 0.3f);
  Tensor g = Tensor::RandomNormal({2, 5}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Forward(x));
    benchmark::DoNotOptimize(model.Backward(g));
  }
}
BENCHMARK(BM_DhgcnTrainStep);

// --- Thread sweep ------------------------------------------------------------------
//
// The same kernels at 1/2/4/8 intra-op threads. Results are bit-identical
// at every width (the determinism contract); these measure only the
// speedup, which is bounded by the physical core count of the machine the
// sweep runs on — see BENCH_threads.json for recorded numbers.

void BM_MatMulThreads(benchmark::State& state) {
  ThreadPool::Get().SetThreads(state.range(1));
  int64_t n = state.range(0);
  Rng rng(19);
  Tensor a = Tensor::RandomNormal({n, n}, rng);
  Tensor b = Tensor::RandomNormal({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  ThreadPool::Get().SetThreads(1);
}
BENCHMARK(BM_MatMulThreads)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->Args({256, 8});

void BM_Conv2dThreads(benchmark::State& state) {
  ThreadPool::Get().SetThreads(state.range(0));
  Rng rng(20);
  Conv2dOptions options;
  options.kernel_h = 3;
  options.pad_h = 1;
  Conv2d conv(32, 32, options, rng);
  Tensor x = Tensor::RandomNormal({4, 32, 16, 25}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x));
  }
  ThreadPool::Get().SetThreads(1);
}
BENCHMARK(BM_Conv2dThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_PairwiseDistancesThreads(benchmark::State& state) {
  ThreadPool::Get().SetThreads(state.range(0));
  Rng rng(21);
  Tensor features = Tensor::RandomNormal({256, 64}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PairwiseDistances(features));
  }
  ThreadPool::Get().SetThreads(1);
}
BENCHMARK(BM_PairwiseDistancesThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// --- Data pipeline -----------------------------------------------------------------

void BM_SyntheticSampleGeneration(benchmark::State& state) {
  SyntheticSkeletonGenerator generator(NtuLikeConfig(10, 1, 32, 1));
  uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        generator.GenerateSample(seed % 10, 0, 0, 0, seed));
    ++seed;
  }
}
BENCHMARK(BM_SyntheticSampleGeneration);

void BM_JointToBone(benchmark::State& state) {
  const SkeletonLayout& layout =
      GetSkeletonLayout(SkeletonLayoutType::kNtu25);
  Rng rng(18);
  Tensor joints = Tensor::RandomNormal({8, 3, 32, 25}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(JointToBone(joints, layout));
  }
}
BENCHMARK(BM_JointToBone);

}  // namespace
}  // namespace dhgcn

BENCHMARK_MAIN();
